// Package auth implements the privacy-preserving V2V authentication
// protocols the paper surveys in §IV.B and contrasts in Fig. 5:
//
//   - Pseudonym-based: each handshake presents a TA-issued pseudonym
//     certificate and a signature; the verifier checks the certificate,
//     the signature, and the (large) pseudonym CRL. Strong unlinkability
//     toward peers while pseudonyms rotate, but verification cost grows
//     with the revoked population × pool size, and the TA can trace.
//   - Group-based: one group signature, one constant-time verification,
//     no per-vehicle CRL — but the group manager can open every
//     signature ("conditional privacy") and joining requires
//     infrastructure contact.
//   - Hybrid (Rajput et al. [31]): a group signature plus a one-time
//     chain identity acting as a trapdoor — constant-time verification
//     without vehicle-side CRL or group management, traceable only by
//     the TA through the trapdoor.
//
// Crypto operations execute for real (ed25519 / HMAC, so forgeries
// actually fail) while their *time* cost is charged to the virtual clock
// through a CostModel calibrated to automotive-grade ECDSA, making
// handshake-latency experiments meaningful.
package auth

import (
	"fmt"

	"time"
	"vcloud/internal/cryptoprim"
	"vcloud/internal/metrics"
	"vcloud/internal/pki"
	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

// Scheme selects the authentication protocol.
type Scheme int

// Schemes.
const (
	Pseudonym Scheme = iota + 1
	Group
	Hybrid
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case Pseudonym:
		return "pseudonym"
	case Group:
		return "group"
	case Hybrid:
		return "hybrid"
	default:
		return "unknown"
	}
}

// CRLMode selects the revocation-check structure (E5 ablation).
type CRLMode int

// CRL lookup modes.
const (
	CRLLinear CRLMode = iota + 1
	CRLBloom
)

// CostModel charges virtual time for cryptographic work, calibrated to
// an automotive OBU doing ECDSA-P256 (~1-2 ms/op class hardware).
type CostModel struct {
	Sign        sim.Time // asymmetric signature generation
	Verify      sim.Time // asymmetric signature verification
	CRLPerEntry sim.Time // linear CRL scan, per entry examined
	CRLBloom    sim.Time // constant bloom pre-check
}

// DefaultCostModel returns the calibrated defaults.
func DefaultCostModel() CostModel {
	return CostModel{
		Sign:        1 * time.Millisecond,
		Verify:      2 * time.Millisecond,
		CRLPerEntry: 500 * time.Nanosecond,
		CRLBloom:    2 * time.Microsecond,
	}
}

// Metrics aggregates handshake outcomes across authenticators sharing a
// scheme (one instance per experiment arm).
type Metrics struct {
	Attempts   metrics.Counter
	Successes  metrics.Counter
	Failures   metrics.Counter // cryptographic rejections
	Timeouts   metrics.Counter
	BytesSent  metrics.Counter
	VerifyOps  metrics.Counter
	CRLScanned metrics.Counter // exact entries examined
	Latency    metrics.Histogram
}

// Result reports one handshake outcome to the initiator.
type Result struct {
	Peer    vnet.Addr
	OK      bool
	Latency sim.Time
	Reason  string
}

// Anchors is the verifier-side trust state every vehicle holds: the TA
// root key, the group public key, a reference to the (periodically
// distributed) CRL, and how to scan it.
type Anchors struct {
	RootKey  []byte
	GroupKey []byte
	CRL      *cryptoprim.CRL
	CRLMode  CRLMode
	// GroupRevoked checks a group signature against the verifier's local
	// revocation tokens; its cost scales with the number of revoked
	// members (len). Nil means no group revocation data.
	GroupRevoked func(sig cryptoprim.GroupSig) (revoked bool, tokens int)
	// HybridRevoked checks a one-time chain identity against the TA's
	// published trapdoor tags (a constant-time set probe — the hybrid
	// scheme's revocation path). Nil means no hybrid revocation data.
	HybridRevoked func(oneTimeID [32]byte) bool
}

const (
	reqKind  = "auth.req"
	respKind = "auth.resp"
	// handshakeTimeout bounds how long the initiator waits; the paper's
	// stringent-time-constraints argument is about exactly this window.
	handshakeTimeout = 2 * time.Second
)

// proof is the scheme-specific evidence inside handshake messages.
type proof struct {
	Scheme Scheme
	// Pseudonym path.
	Cert cryptoprim.Certificate
	Sig  []byte
	// Group / hybrid path.
	GroupSig cryptoprim.GroupSig
	// Hybrid trapdoor.
	OneTimeID [32]byte
}

type authReq struct {
	Nonce uint64
	Proof proof
}

type authResp struct {
	Nonce uint64 // echoes the request nonce
	Proof proof
}

// Authenticator runs handshakes for one vehicle.
type Authenticator struct {
	node    *vnet.Node
	enroll  *pki.Enrollment
	anchors Anchors
	scheme  Scheme
	cost    CostModel
	met     *Metrics

	nonce   uint64
	pending map[uint64]*pendingHS
	stopped bool
	// peerVerified observers run at the responder after a peer's proof
	// checks out (the hook secure cloud formation builds on).
	peerVerified []func(peer vnet.Addr)
}

type pendingHS struct {
	peer    vnet.Addr
	started sim.Time
	done    func(Result)
	timer   sim.EventID
}

// New creates an authenticator on node using the given scheme.
func New(node *vnet.Node, enroll *pki.Enrollment, anchors Anchors, scheme Scheme, cost CostModel, met *Metrics) (*Authenticator, error) {
	if node == nil || enroll == nil || met == nil {
		return nil, fmt.Errorf("auth: node, enrollment and metrics must not be nil")
	}
	if scheme < Pseudonym || scheme > Hybrid {
		return nil, fmt.Errorf("auth: unknown scheme %d", scheme)
	}
	if len(anchors.RootKey) == 0 {
		return nil, fmt.Errorf("auth: anchors must include the TA root key")
	}
	if cost == (CostModel{}) {
		cost = DefaultCostModel()
	}
	a := &Authenticator{
		node:    node,
		enroll:  enroll,
		anchors: anchors,
		scheme:  scheme,
		cost:    cost,
		met:     met,
		pending: make(map[uint64]*pendingHS),
	}
	node.Handle(reqKind, a.onRequest)
	node.Handle(respKind, a.onResponse)
	return a, nil
}

// Stop detaches the authenticator.
func (a *Authenticator) Stop() {
	if a.stopped {
		return
	}
	a.stopped = true
	a.node.Handle(reqKind, nil)
	a.node.Handle(respKind, nil)
}

// Scheme returns the protocol in use.
func (a *Authenticator) Scheme() Scheme { return a.scheme }

// OnPeerVerified registers an observer that fires whenever this node,
// acting as responder, successfully verifies an initiator's credentials.
// Secure v-cloud formation (§V.A) uses this to gate cloud membership.
func (a *Authenticator) OnPeerVerified(fn func(peer vnet.Addr)) {
	if fn != nil {
		a.peerVerified = append(a.peerVerified, fn)
	}
}

// wireSize returns the on-air bytes of a proof.
func wireSize(s Scheme) int {
	switch s {
	case Pseudonym:
		return cryptoprim.CertWireSize + 64 + 16
	case Group:
		return cryptoprim.GroupSigWireSize + 16
	case Hybrid:
		return cryptoprim.GroupSigWireSize + 32 + 16
	default:
		return 64
	}
}

// challenge builds the byte string both sides sign.
func challenge(nonce uint64, initiator, responder vnet.Addr, phase byte) []byte {
	d := cryptoprim.Digest(
		[]byte{phase},
		[]byte(fmt.Sprintf("%d|%d|%d", nonce, initiator, responder)),
	)
	return d[:]
}

// makeProof signs the challenge under the active scheme. It also charges
// the signing cost by returning the virtual delay the caller schedules.
func (a *Authenticator) makeProof(ch []byte, nonce uint64) (proof, sim.Time) {
	switch a.scheme {
	case Pseudonym:
		entry := a.enroll.Pseudonyms.Current()
		p := proof{Scheme: Pseudonym, Cert: entry.Cert, Sig: entry.Key.Sign(ch)}
		a.enroll.Pseudonyms.Rotate()
		return p, a.cost.Sign
	case Group:
		return proof{Scheme: Group, GroupSig: a.enroll.Group.Sign(ch, nonce)}, a.cost.Sign
	default: // Hybrid
		return proof{
			Scheme:    Hybrid,
			GroupSig:  a.enroll.Group.Sign(ch, nonce),
			OneTimeID: a.enroll.Chain.Next(),
		}, a.cost.Sign
	}
}

// verifyProof checks a peer's proof against the anchors, returning the
// verdict and the virtual time the verification consumed.
func (a *Authenticator) verifyProof(p proof, ch []byte, now sim.Time) (bool, string, sim.Time) {
	switch p.Scheme {
	case Pseudonym:
		cost := a.cost.Verify // certificate check
		if err := cryptoprim.CheckCert(&p.Cert, a.anchors.RootKey, time.Duration(now)); err != nil {
			a.met.VerifyOps.Inc()
			return false, "bad certificate", cost
		}
		cost += a.cost.Verify // signature check
		a.met.VerifyOps.Add(2)
		if !cryptoprim.Verify(p.Cert.PubKey, ch, p.Sig) {
			return false, "bad signature", cost
		}
		if a.anchors.CRL != nil {
			revoked, scanned := false, 0
			if a.anchors.CRLMode == CRLBloom {
				revoked, scanned = a.anchors.CRL.ContainsBloom(p.Cert.SerialOf())
				cost += a.cost.CRLBloom + sim.Time(scanned)*a.cost.CRLPerEntry
			} else {
				revoked, scanned = a.anchors.CRL.ContainsLinear(p.Cert.SerialOf())
				cost += sim.Time(scanned) * a.cost.CRLPerEntry
			}
			a.met.CRLScanned.Add(scanned)
			if revoked {
				return false, "revoked pseudonym", cost
			}
		}
		return true, "", cost
	case Group, Hybrid:
		cost := a.cost.Verify
		a.met.VerifyOps.Inc()
		if len(a.anchors.GroupKey) == 0 {
			return false, "no group key", cost
		}
		if !cryptoprim.VerifyGroupSig(a.anchors.GroupKey, ch, p.GroupSig) {
			return false, "bad group signature", cost
		}
		if p.Scheme == Group && a.anchors.GroupRevoked != nil {
			revoked, tokens := a.anchors.GroupRevoked(p.GroupSig)
			cost += sim.Time(tokens) * a.cost.CRLPerEntry
			a.met.CRLScanned.Add(tokens)
			if revoked {
				return false, "revoked member", cost
			}
		}
		// Hybrid: revocation via TA-published trapdoor tags — a single
		// constant-time probe, regardless of revoked population.
		if p.Scheme == Hybrid {
			cost += a.cost.CRLBloom
			if a.anchors.HybridRevoked != nil && a.anchors.HybridRevoked(p.OneTimeID) {
				return false, "revoked (trapdoor)", cost
			}
		}
		return true, "", cost
	default:
		return false, "unknown scheme", 0
	}
}

// Authenticate initiates a mutual handshake with peer. done receives the
// outcome exactly once.
func (a *Authenticator) Authenticate(peer vnet.Addr, done func(Result)) error {
	if a.stopped {
		return fmt.Errorf("auth: authenticator stopped")
	}
	if peer == a.node.Addr() {
		return fmt.Errorf("auth: cannot authenticate to self")
	}
	a.nonce++
	nonce := a.nonce
	ch := challenge(nonce, a.node.Addr(), peer, 1)
	p, signCost := a.makeProof(ch, nonce)
	a.met.Attempts.Inc()
	started := a.node.Kernel().Now()
	hs := &pendingHS{peer: peer, started: started, done: done}
	a.pending[nonce] = hs
	hs.timer = a.node.Kernel().After(handshakeTimeout, func() {
		if _, ok := a.pending[nonce]; !ok {
			return
		}
		delete(a.pending, nonce)
		a.met.Timeouts.Inc()
		if done != nil {
			done(Result{Peer: peer, OK: false, Reason: "timeout"})
		}
	})
	size := wireSize(a.scheme)
	a.met.BytesSent.Add(size)
	// Charge signing cost before the frame leaves.
	a.node.Kernel().After(signCost, func() {
		if a.stopped {
			return
		}
		msg := a.node.NewMessage(peer, reqKind, size, 1, authReq{Nonce: nonce, Proof: p})
		a.node.SendTo(peer, msg)
	})
	return nil
}

// onRequest runs at the responder.
func (a *Authenticator) onRequest(msg vnet.Message, relayer vnet.Addr) {
	if a.stopped {
		return
	}
	req, ok := msg.Payload.(authReq)
	if !ok {
		return
	}
	initiator := msg.Origin
	ch := challenge(req.Nonce, initiator, a.node.Addr(), 1)
	now := a.node.Kernel().Now()
	okv, _, vCost := a.verifyProof(req.Proof, ch, now)
	if !okv {
		a.met.Failures.Inc()
		return // silently drop forgeries, as real protocols do
	}
	for _, fn := range a.peerVerified {
		fn(initiator)
	}
	// Respond with our own proof over phase-2 challenge.
	ch2 := challenge(req.Nonce, initiator, a.node.Addr(), 2)
	p, signCost := a.makeProof(ch2, req.Nonce)
	size := wireSize(a.scheme)
	a.met.BytesSent.Add(size)
	a.node.Kernel().After(vCost+signCost, func() {
		if a.stopped {
			return
		}
		resp := a.node.NewMessage(initiator, respKind, size, 1, authResp{Nonce: req.Nonce, Proof: p})
		a.node.SendTo(initiator, resp)
	})
}

// onResponse runs at the initiator.
func (a *Authenticator) onResponse(msg vnet.Message, relayer vnet.Addr) {
	if a.stopped {
		return
	}
	resp, ok := msg.Payload.(authResp)
	if !ok {
		return
	}
	hs, ok := a.pending[resp.Nonce]
	if !ok || hs.peer != msg.Origin {
		return
	}
	ch2 := challenge(resp.Nonce, a.node.Addr(), msg.Origin, 2)
	now := a.node.Kernel().Now()
	okv, reason, vCost := a.verifyProof(resp.Proof, ch2, now)
	// Complete after the verification cost elapses.
	a.node.Kernel().After(vCost, func() {
		cur, still := a.pending[resp.Nonce]
		if !still || cur != hs {
			return
		}
		delete(a.pending, resp.Nonce)
		a.node.Kernel().Cancel(hs.timer)
		lat := a.node.Kernel().Now() - hs.started
		if okv {
			a.met.Successes.Inc()
			a.met.Latency.ObserveDuration(lat)
		} else {
			a.met.Failures.Inc()
		}
		if hs.done != nil {
			hs.done(Result{Peer: hs.peer, OK: okv, Latency: lat, Reason: reason})
		}
	})
}
