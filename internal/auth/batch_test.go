package auth

import (
	"math/rand"
	"testing"
	"time"

	"vcloud/internal/cryptoprim"
	"vcloud/internal/sim"
)

func batchRig(t *testing.T) (*sim.Kernel, *cryptoprim.GroupManager, cryptoprim.GroupCred) {
	t.Helper()
	k := sim.NewKernel(1)
	gm, err := cryptoprim.NewGroupManager("g", rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	cred, err := gm.Enroll("member", rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	return k, gm, cred
}

func TestBatchVerifierValidation(t *testing.T) {
	k := sim.NewKernel(1)
	if _, err := NewBatchVerifier(nil, CostModel{}, time.Millisecond); err == nil {
		t.Error("nil kernel should error")
	}
	if _, err := NewBatchVerifier(k, CostModel{}, 0); err == nil {
		t.Error("zero window should error")
	}
}

func TestBatchAmortizesVerification(t *testing.T) {
	k, gm, cred := batchRig(t)
	bv, err := NewBatchVerifier(k, CostModel{}, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	okCount := 0
	var doneAt sim.Time
	for i := 0; i < n; i++ {
		msg := []byte{byte(i)}
		sig := cred.Sign(msg, uint64(i))
		bv.Submit(gm.PublicKey(), msg, sig, func(ok bool) {
			if ok {
				okCount++
			}
			doneAt = k.Now()
		})
	}
	if bv.QueueLen() != n {
		t.Fatalf("queue = %d", bv.QueueLen())
	}
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if okCount != n {
		t.Fatalf("verified %d/%d", okCount, n)
	}
	// Individual: 20 × 2 ms = 40 ms of verification. Batch: 2 ms + 19 ×
	// 0.2 ms = 5.8 ms, flushed at the 50 ms window.
	want := 50*time.Millisecond + 2*time.Millisecond + 19*200*time.Microsecond
	if doneAt != want {
		t.Errorf("batch completed at %v, want %v", doneAt, want)
	}
	if bv.SavedTime <= 0 {
		t.Error("no time saved by batching")
	}
	if bv.Batches.Count() != 1 || bv.Batches.Mean() != n {
		t.Errorf("batch histogram: %v", bv.Batches.Summarize())
	}
}

func TestBatchWithForgeryFallsBack(t *testing.T) {
	k, gm, cred := batchRig(t)
	bv, err := NewBatchVerifier(k, CostModel{}, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// 4 valid + 1 forged signature.
	var results []bool
	for i := 0; i < 4; i++ {
		msg := []byte{byte(i)}
		bv.Submit(gm.PublicKey(), msg, cred.Sign(msg, uint64(i)), func(ok bool) {
			results = append(results, ok)
		})
	}
	forged := cred.Sign([]byte("original"), 99)
	bv.Submit(gm.PublicKey(), []byte("tampered"), forged, func(ok bool) {
		results = append(results, ok)
	})
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("results = %d", len(results))
	}
	valid := 0
	for _, ok := range results {
		if ok {
			valid++
		}
	}
	if valid != 4 {
		t.Errorf("valid = %d, want 4 (forgery identified individually)", valid)
	}
	if bv.FallbackBatches.Value() != 1 {
		t.Errorf("fallback batches = %d, want 1", bv.FallbackBatches.Value())
	}
}

func TestBatchManualFlush(t *testing.T) {
	k, gm, cred := batchRig(t)
	bv, err := NewBatchVerifier(k, CostModel{}, time.Hour) // window never fires
	if err != nil {
		t.Fatal(err)
	}
	done := false
	msg := []byte("urgent")
	bv.Submit(gm.PublicKey(), msg, cred.Sign(msg, 1), func(ok bool) { done = ok })
	bv.Flush()
	if bv.QueueLen() != 0 {
		t.Error("queue not drained by Flush")
	}
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("flushed item not verified")
	}
	bv.Flush() // empty flush is a no-op
}

func TestBatchSeparateWindows(t *testing.T) {
	k, gm, cred := batchRig(t)
	bv, err := NewBatchVerifier(k, CostModel{}, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	submit := func() {
		msg := []byte{byte(count)}
		bv.Submit(gm.PublicKey(), msg, cred.Sign(msg, uint64(count+100)), func(ok bool) {
			if ok {
				count++
			}
		})
	}
	submit()
	k.After(100*time.Millisecond, submit)
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count = %d", count)
	}
	if bv.Batches.Count() != 2 {
		t.Errorf("batches = %d, want 2 separate windows", bv.Batches.Count())
	}
}
