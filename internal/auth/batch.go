package auth

import (
	"fmt"
	"time"

	"vcloud/internal/cryptoprim"
	"vcloud/internal/metrics"
	"vcloud/internal/sim"
)

// BatchVerifier implements the batch message verification of Limbasiya &
// Das [21] and the amortized real-time signing of SCRA [44] (§IV.D): an
// RSU or cluster head collects signed messages for a short window and
// verifies them together, paying one full verification plus a small
// per-item cost instead of a full verification each.
//
// Semantics match real batch verification: if every signature in the
// batch is valid, the batch check succeeds at the amortized cost; if any
// signature is invalid, the batch check fails and the verifier falls
// back to individual verification to identify the culprits — so an
// attacker can force the worst case, which the E5-style ablations can
// measure.
type BatchVerifier struct {
	kernel *sim.Kernel
	cost   CostModel
	window sim.Time
	// batchExtra is the amortized per-item cost (default Verify/10).
	batchExtra sim.Time

	queue   []batchItem
	flushAt sim.EventID
	pending bool

	// Batches records batch sizes; SavedTime accumulates virtual time
	// saved versus individual verification.
	Batches   metrics.Histogram
	SavedTime sim.Time
	// FallbackBatches counts batches that contained an invalid signature
	// and degraded to individual verification.
	FallbackBatches metrics.Counter
}

type batchItem struct {
	groupPub []byte
	msg      []byte
	sig      cryptoprim.GroupSig
	done     func(ok bool)
}

// NewBatchVerifier creates a verifier flushing every window.
func NewBatchVerifier(kernel *sim.Kernel, cost CostModel, window sim.Time) (*BatchVerifier, error) {
	if kernel == nil {
		return nil, fmt.Errorf("auth: kernel must not be nil")
	}
	if window <= 0 {
		return nil, fmt.Errorf("auth: batch window must be positive, got %v", window)
	}
	if cost == (CostModel{}) {
		cost = DefaultCostModel()
	}
	return &BatchVerifier{
		kernel:     kernel,
		cost:       cost,
		window:     window,
		batchExtra: cost.Verify / 10,
	}, nil
}

// Submit queues a group-signed message; done fires once the batch
// containing it has been verified (ok reports this signature's
// validity).
func (b *BatchVerifier) Submit(groupPub, msg []byte, sig cryptoprim.GroupSig, done func(ok bool)) {
	b.queue = append(b.queue, batchItem{groupPub: groupPub, msg: msg, sig: sig, done: done})
	if !b.pending {
		b.pending = true
		b.flushAt = b.kernel.After(b.window, b.flush)
	}
}

// QueueLen reports the messages waiting for the next flush.
func (b *BatchVerifier) QueueLen() int { return len(b.queue) }

// Flush forces immediate verification of the queued batch (e.g. an
// emergency message cannot wait for the window).
func (b *BatchVerifier) Flush() {
	if b.pending {
		b.kernel.Cancel(b.flushAt)
	}
	b.flush()
}

func (b *BatchVerifier) flush() {
	b.pending = false
	if len(b.queue) == 0 {
		return
	}
	batch := b.queue
	b.queue = nil
	n := len(batch)
	b.Batches.Observe(float64(n))

	// Actually verify everything (crypto is real); determine whether the
	// batch as a whole is clean.
	results := make([]bool, n)
	allOK := true
	for i, it := range batch {
		results[i] = cryptoprim.VerifyGroupSig(it.groupPub, it.msg, it.sig)
		if !results[i] {
			allOK = false
		}
	}

	individual := sim.Time(n) * b.cost.Verify
	var charged sim.Time
	if allOK {
		charged = b.cost.Verify + sim.Time(n-1)*b.batchExtra
	} else {
		// Batch check fails fast, then individual verification of every
		// item identifies the invalid ones.
		b.FallbackBatches.Inc()
		charged = b.cost.Verify + sim.Time(n-1)*b.batchExtra + individual
	}
	if charged < individual {
		b.SavedTime += individual - charged
	}
	b.kernel.After(charged, func() {
		for i, it := range batch {
			if it.done != nil {
				it.done(results[i])
			}
		}
	})
}

// DefaultBatchWindow is a practical RSU batching interval.
const DefaultBatchWindow = 50 * time.Millisecond
