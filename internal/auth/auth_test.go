package auth

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"vcloud/internal/cryptoprim"
	"vcloud/internal/geo"
	"vcloud/internal/pki"
	"vcloud/internal/radio"
	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

// rig wires two (or more) static nodes with enrollments.
type rig struct {
	k     *sim.Kernel
	m     *radio.Medium
	ta    *pki.TA
	nodes []*vnet.Node
	enrs  []*pki.Enrollment
}

func newRig(t testing.TB, n int) *rig {
	t.Helper()
	k := sim.NewKernel(1)
	bounds := geo.NewRect(geo.Point{X: -100, Y: -100}, geo.Point{X: 2000, Y: 100})
	m, err := radio.NewMedium(k, bounds, radio.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ta, err := pki.New("TA", rand.New(rand.NewSource(99)), pki.Config{PoolSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{k: k, m: m, ta: ta}
	for i := 0; i < n; i++ {
		pos := geo.Point{X: float64(i) * 100, Y: 0}
		addr := vnet.Addr(i)
		m.UpdatePosition(addr, pos)
		node, err := vnet.NewNode(k, m, addr, vnet.Config{}, func() (geo.Point, float64, float64) {
			return pos, 0, 0
		})
		if err != nil {
			t.Fatal(err)
		}
		enr, err := ta.Enroll(pki.VehicleIdentity(fmt.Sprintf("veh-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		r.nodes = append(r.nodes, node)
		r.enrs = append(r.enrs, enr)
	}
	return r
}

func (r *rig) anchors(mode CRLMode) Anchors {
	return Anchors{
		RootKey:  r.ta.RootKey(),
		GroupKey: r.ta.GroupKey(),
		CRL:      r.ta.CRL(),
		CRLMode:  mode,
		GroupRevoked: func(sig cryptoprim.GroupSig) (bool, int) {
			return !r.ta.GroupManager().CheckNotRevoked(sig), r.ta.CRL().Len() / 10
		},
	}
}

func (r *rig) authPair(t testing.TB, scheme Scheme, met *Metrics) (*Authenticator, *Authenticator) {
	t.Helper()
	a, err := New(r.nodes[0], r.enrs[0], r.anchors(CRLLinear), scheme, CostModel{}, met)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(r.nodes[1], r.enrs[1], r.anchors(CRLLinear), scheme, CostModel{}, met)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestSchemeString(t *testing.T) {
	if Pseudonym.String() != "pseudonym" || Group.String() != "group" || Hybrid.String() != "hybrid" {
		t.Error("scheme strings wrong")
	}
	if Scheme(0).String() != "unknown" {
		t.Error("zero scheme should be unknown")
	}
}

func TestNewValidation(t *testing.T) {
	r := newRig(t, 1)
	met := &Metrics{}
	anchors := r.anchors(CRLLinear)
	if _, err := New(nil, r.enrs[0], anchors, Pseudonym, CostModel{}, met); err == nil {
		t.Error("nil node should error")
	}
	if _, err := New(r.nodes[0], nil, anchors, Pseudonym, CostModel{}, met); err == nil {
		t.Error("nil enrollment should error")
	}
	if _, err := New(r.nodes[0], r.enrs[0], anchors, Pseudonym, CostModel{}, nil); err == nil {
		t.Error("nil metrics should error")
	}
	if _, err := New(r.nodes[0], r.enrs[0], anchors, Scheme(99), CostModel{}, met); err == nil {
		t.Error("bad scheme should error")
	}
	if _, err := New(r.nodes[0], r.enrs[0], Anchors{}, Pseudonym, CostModel{}, met); err == nil {
		t.Error("missing root key should error")
	}
}

func TestMutualAuthAllSchemes(t *testing.T) {
	for _, scheme := range []Scheme{Pseudonym, Group, Hybrid} {
		t.Run(scheme.String(), func(t *testing.T) {
			r := newRig(t, 2)
			met := &Metrics{}
			a, _ := r.authPair(t, scheme, met)
			var res Result
			if err := a.Authenticate(1, func(r Result) { res = r }); err != nil {
				t.Fatal(err)
			}
			if err := r.k.Run(5 * time.Second); err != nil {
				t.Fatal(err)
			}
			if !res.OK {
				t.Fatalf("handshake failed: %+v", res)
			}
			if res.Peer != 1 {
				t.Errorf("peer = %d", res.Peer)
			}
			// Latency must include at least 2 signs + 2 verifies of
			// virtual crypto time (1ms + 2ms each side).
			if res.Latency < 6*time.Millisecond {
				t.Errorf("latency %v too small for modeled crypto costs", res.Latency)
			}
			if met.Successes.Value() != 1 || met.Attempts.Value() != 1 {
				t.Errorf("metrics: %+v", met)
			}
			if met.Latency.Count() != 1 {
				t.Error("latency histogram empty")
			}
		})
	}
}

func TestAuthenticateValidation(t *testing.T) {
	r := newRig(t, 2)
	met := &Metrics{}
	a, _ := r.authPair(t, Group, met)
	if err := a.Authenticate(a.node.Addr(), nil); err == nil {
		t.Error("self-auth should error")
	}
	a.Stop()
	a.Stop() // double stop safe
	if err := a.Authenticate(1, nil); err == nil {
		t.Error("authenticate after stop should error")
	}
}

func TestTimeoutWhenPeerSilent(t *testing.T) {
	r := newRig(t, 2)
	met := &Metrics{}
	// Only the initiator runs auth; the peer has no authenticator.
	a, err := New(r.nodes[0], r.enrs[0], r.anchors(CRLLinear), Pseudonym, CostModel{}, met)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	gotCalls := 0
	if err := a.Authenticate(1, func(r Result) { res = r; gotCalls++ }); err != nil {
		t.Fatal(err)
	}
	if err := r.k.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if res.OK || res.Reason != "timeout" {
		t.Errorf("result = %+v, want timeout", res)
	}
	if gotCalls != 1 {
		t.Errorf("done called %d times", gotCalls)
	}
	if met.Timeouts.Value() != 1 {
		t.Errorf("timeouts = %d", met.Timeouts.Value())
	}
}

func TestForgedPseudonymRejected(t *testing.T) {
	r := newRig(t, 2)
	met := &Metrics{}
	_, b := r.authPair(t, Pseudonym, met)
	_ = b
	// The attacker self-signs a certificate with its own "CA".
	evilRand := rand.New(rand.NewSource(666))
	evilCA, _ := cryptoprim.NewCA("evil", evilRand)
	evilKey, _ := cryptoprim.GenerateKey(evilRand)
	cert, _ := evilCA.Issue([]byte("innocent"), evilKey.Public, time.Hour)
	ch := challenge(7, 0, 1, 1)
	forged := authReq{Nonce: 7, Proof: proof{Scheme: Pseudonym, Cert: cert, Sig: evilKey.Sign(ch)}}
	msg := r.nodes[0].NewMessage(1, reqKind, 300, 1, forged)
	r.nodes[0].SendTo(1, msg)
	if err := r.k.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if met.Failures.Value() != 1 {
		t.Errorf("failures = %d, want 1 (forged cert rejected)", met.Failures.Value())
	}
	if met.Successes.Value() != 0 {
		t.Error("forged handshake succeeded")
	}
}

func TestForgedGroupSigRejected(t *testing.T) {
	r := newRig(t, 2)
	met := &Metrics{}
	_, _ = r.authPair(t, Group, met)
	// Attacker enrolled in a different group.
	evilRand := rand.New(rand.NewSource(13))
	gm2, _ := cryptoprim.NewGroupManager("foreign", evilRand)
	cred, _ := gm2.Enroll("mallory", evilRand)
	ch := challenge(3, 0, 1, 1)
	forged := authReq{Nonce: 3, Proof: proof{Scheme: Group, GroupSig: cred.Sign(ch, 3)}}
	msg := r.nodes[0].NewMessage(1, reqKind, 150, 1, forged)
	r.nodes[0].SendTo(1, msg)
	if err := r.k.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if met.Failures.Value() != 1 || met.Successes.Value() != 0 {
		t.Errorf("forged group sig: failures=%d successes=%d", met.Failures.Value(), met.Successes.Value())
	}
}

func TestRevokedPseudonymRejected(t *testing.T) {
	r := newRig(t, 2)
	met := &Metrics{}
	a, _ := r.authPair(t, Pseudonym, met)
	// Revoke the initiator: its pseudonym serials enter the shared CRL.
	if err := r.ta.RevokeVehicle("veh-0"); err != nil {
		t.Fatal(err)
	}
	var res Result
	if err := a.Authenticate(1, func(rr Result) { res = rr }); err != nil {
		t.Fatal(err)
	}
	if err := r.k.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Error("revoked vehicle authenticated")
	}
	if met.Failures.Value() == 0 {
		t.Error("revocation rejection not recorded")
	}
}

func TestRevokedGroupMemberRejected(t *testing.T) {
	r := newRig(t, 2)
	met := &Metrics{}
	a, _ := r.authPair(t, Group, met)
	if err := r.ta.RevokeVehicle("veh-0"); err != nil {
		t.Fatal(err)
	}
	var res Result
	if err := a.Authenticate(1, func(rr Result) { res = rr }); err != nil {
		t.Fatal(err)
	}
	if err := r.k.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Error("revoked group member authenticated")
	}
}

func TestPseudonymRotationUnlinkable(t *testing.T) {
	// The responder must see a different pseudonym subject on each
	// handshake — that is the whole point of the pool.
	r := newRig(t, 2)
	met := &Metrics{}
	a, _ := r.authPair(t, Pseudonym, met)
	subjects := map[string]bool{}
	seen := 0
	r.nodes[1].Handle("observe", nil) // no-op; observation happens below
	// Wrap node 1's request handler by observing through a second handler
	// channel: instead, observe initiator-side by running 5 handshakes
	// and tracking the pool.
	for i := 0; i < 5; i++ {
		before := a.enroll.Pseudonyms.Current().Cert
		subjects[string(before.Subject)] = true
		done := make(chan struct{}, 1)
		_ = done
		if err := a.Authenticate(1, nil); err != nil {
			t.Fatal(err)
		}
		if err := r.k.Run(r.k.Now() + 5*time.Second); err != nil {
			t.Fatal(err)
		}
		seen++
	}
	if len(subjects) != 5 {
		t.Errorf("pseudonym subjects used = %d, want 5 distinct", len(subjects))
	}
	if met.Successes.Value() != 5 {
		t.Errorf("successes = %d", met.Successes.Value())
	}
}

func TestCRLCostLinearVsBloom(t *testing.T) {
	// Grow the CRL and compare pseudonym handshake latency between
	// linear and bloom verifiers: the E5 ablation in miniature.
	latency := func(mode CRLMode, revoked int) sim.Time {
		r := newRig(t, 2)
		for i := 2; i < 2+revoked; i++ {
			id := pki.VehicleIdentity(fmt.Sprintf("rev-%d", i))
			if _, err := r.ta.Enroll(id); err != nil {
				t.Fatal(err)
			}
			if err := r.ta.RevokeVehicle(id); err != nil {
				t.Fatal(err)
			}
		}
		met := &Metrics{}
		a, err := New(r.nodes[0], r.enrs[0], r.anchors(mode), Pseudonym, CostModel{}, met)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := New(r.nodes[1], r.enrs[1], r.anchors(mode), Pseudonym, CostModel{}, met); err != nil {
			t.Fatal(err)
		}
		var res Result
		if err := a.Authenticate(1, func(rr Result) { res = rr }); err != nil {
			t.Fatal(err)
		}
		if err := r.k.Run(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Fatalf("handshake failed under mode %d", mode)
		}
		return res.Latency
	}
	linSmall := latency(CRLLinear, 10)
	linBig := latency(CRLLinear, 500)
	bloomBig := latency(CRLBloom, 500)
	if linBig <= linSmall {
		t.Errorf("linear CRL cost should grow: %v (10 revoked) vs %v (500)", linSmall, linBig)
	}
	if bloomBig >= linBig {
		t.Errorf("bloom (%v) should beat linear (%v) at 500 revoked", bloomBig, linBig)
	}
}

func TestRevokedHybridRejectedViaTrapdoor(t *testing.T) {
	r := newRig(t, 2)
	met := &Metrics{}
	anchors := r.anchors(CRLLinear)
	anchors.HybridRevoked = func(id [32]byte) bool {
		tags := r.ta.HybridRevocationTags(64)
		_, ok := tags[id]
		return ok
	}
	a, err := New(r.nodes[0], r.enrs[0], anchors, Hybrid, CostModel{}, met)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(r.nodes[1], r.enrs[1], anchors, Hybrid, CostModel{}, met); err != nil {
		t.Fatal(err)
	}
	// Works before revocation.
	var res Result
	if err := a.Authenticate(1, func(rr Result) { res = rr }); err != nil {
		t.Fatal(err)
	}
	if err := r.k.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("pre-revocation hybrid handshake failed: %+v", res)
	}
	// Revoke the initiator: its chain IDs are now trapdoor tags.
	if err := r.ta.RevokeVehicle("veh-0"); err != nil {
		t.Fatal(err)
	}
	res = Result{}
	if err := a.Authenticate(1, func(rr Result) { res = rr }); err != nil {
		t.Fatal(err)
	}
	if err := r.k.Run(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Error("revoked vehicle authenticated via hybrid scheme")
	}
}

func TestTraceabilityPaths(t *testing.T) {
	r := newRig(t, 2)
	// TA traces a pseudonym to its owner.
	serial := r.enrs[0].Pseudonyms.Current().Cert.SerialOf()
	owner, ok := r.ta.TracePseudonym(serial)
	if !ok || owner != "veh-0" {
		t.Errorf("TracePseudonym = %q, %v", owner, ok)
	}
	// TA traces group signatures.
	sig := r.enrs[1].Group.Sign([]byte("m"), 42)
	who, ok := r.ta.TraceGroupSig(sig)
	if !ok || who != "veh-1" {
		t.Errorf("TraceGroupSig = %q, %v", who, ok)
	}
}
