package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"vcloud/internal/geo"
	"vcloud/internal/sim"
)

// Parse reads a plan in the textual plan language: one event per entry,
// entries separated by newlines or semicolons, '#' starts a comment.
//
// Each entry is "<time> <kind> <args...>", with times and durations in
// Go duration syntax:
//
//	30s  crash 5              # vehicle 5 radio-dead
//	50s  recover 5
//	30s  rsu-down 0           # RSU by creation index
//	60s  rsu-up 0
//	40s  partition 1500,0 400 20s   # isolate r=400m around (1500,0) for 20s
//	45s  isolate 3 12s              # cut node 3 off from everyone for 12s
//	45s  isolate 3,7,9 12s          # cut {3,7,9} off from everyone else
//	55s  loss 0.3 10s               # drop 30% of frames for 10s
//	70s  kill-controller 0          # via the injector's kill hook
//
// The trailing duration on partition, loss and isolate is optional
// (omitted = until the end of the run). Plan order is preserved:
// same-time events apply in the order written.
func Parse(text string) (Plan, error) {
	var plan Plan
	entries := strings.FieldsFunc(text, func(r rune) bool { return r == '\n' || r == ';' })
	for _, entry := range entries {
		if i := strings.IndexByte(entry, '#'); i >= 0 {
			entry = entry[:i]
		}
		fields := strings.Fields(entry)
		if len(fields) == 0 {
			continue
		}
		e, err := parseEvent(fields)
		if err != nil {
			return nil, fmt.Errorf("faults: %q: %w", strings.TrimSpace(entry), err)
		}
		plan = append(plan, e)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

func parseEvent(fields []string) (Event, error) {
	if len(fields) < 2 {
		return Event{}, fmt.Errorf("want \"<time> <kind> <args...>\"")
	}
	at, err := time.ParseDuration(fields[0])
	if err != nil {
		return Event{}, fmt.Errorf("bad time %q: %w", fields[0], err)
	}
	e := Event{At: at, Kind: Kind(fields[1])}
	args := fields[2:]
	switch e.Kind {
	case Crash, Recover, RSUDown, RSUUp, KillController, KillMember:
		if len(args) != 1 {
			return Event{}, fmt.Errorf("%s wants one target argument", e.Kind)
		}
		t, err := strconv.Atoi(args[0])
		if err != nil {
			return Event{}, fmt.Errorf("bad target %q: %w", args[0], err)
		}
		e.Target = t
	case Partition:
		if len(args) != 2 && len(args) != 3 {
			return Event{}, fmt.Errorf("partition wants \"<x>,<y> <radius> [dur]\"")
		}
		c, err := parsePoint(args[0])
		if err != nil {
			return Event{}, err
		}
		e.Center = c
		r, err := strconv.ParseFloat(args[1], 64)
		if err != nil {
			return Event{}, fmt.Errorf("bad radius %q: %w", args[1], err)
		}
		e.Radius = r
		if len(args) == 3 {
			if e.Dur, err = parseDur(args[2]); err != nil {
				return Event{}, err
			}
		}
	case Isolate:
		if len(args) != 1 && len(args) != 2 {
			return Event{}, fmt.Errorf("isolate wants \"<target>[,<keep>...] [dur]\"")
		}
		for i, f := range strings.Split(args[0], ",") {
			t, err := strconv.Atoi(f)
			if err != nil {
				return Event{}, fmt.Errorf("bad isolate address %q: %w", f, err)
			}
			if i == 0 {
				e.Target = t
			} else {
				e.Keep = append(e.Keep, t)
			}
		}
		if len(args) == 2 {
			if e.Dur, err = parseDur(args[1]); err != nil {
				return Event{}, err
			}
		}
	case Loss:
		if len(args) != 1 && len(args) != 2 {
			return Event{}, fmt.Errorf("loss wants \"<prob> [dur]\"")
		}
		p, err := strconv.ParseFloat(args[0], 64)
		if err != nil {
			return Event{}, fmt.Errorf("bad probability %q: %w", args[0], err)
		}
		e.Prob = p
		if len(args) == 2 {
			if e.Dur, err = parseDur(args[1]); err != nil {
				return Event{}, err
			}
		}
	default:
		return Event{}, fmt.Errorf("unknown kind %q", fields[1])
	}
	return e, nil
}

func parsePoint(s string) (geo.Point, error) {
	xy := strings.SplitN(s, ",", 2)
	if len(xy) != 2 {
		return geo.Point{}, fmt.Errorf("bad point %q: want \"<x>,<y>\"", s)
	}
	x, err := strconv.ParseFloat(xy[0], 64)
	if err != nil {
		return geo.Point{}, fmt.Errorf("bad point %q: %w", s, err)
	}
	y, err := strconv.ParseFloat(xy[1], 64)
	if err != nil {
		return geo.Point{}, fmt.Errorf("bad point %q: %w", s, err)
	}
	return geo.Point{X: x, Y: y}, nil
}

func parseDur(s string) (sim.Time, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q: %w", s, err)
	}
	return d, nil
}
