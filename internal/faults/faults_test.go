package faults

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"vcloud/internal/geo"
	"vcloud/internal/roadnet"
	"vcloud/internal/scenario"
	"vcloud/internal/vnet"
)

func testScenario(t testing.TB, seed int64, vehicles int) *scenario.Scenario {
	t.Helper()
	net, err := roadnet.ParkingLot(roadnet.ParkingLotSpec{Aisles: 2, AisleLenM: 100, AisleGapM: 30})
	if err != nil {
		t.Fatalf("parking lot: %v", err)
	}
	s, err := scenario.New(scenario.Spec{Seed: seed, Network: net, NumVehicles: vehicles, Parked: true})
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	if _, err := s.AddRSU(geo.Point{X: 0, Y: 0}); err != nil {
		t.Fatalf("rsu: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	return s
}

// pingCount sends n spaced unicasts from a to b and reports how many
// arrive within the run window.
func pingCount(t *testing.T, s *scenario.Scenario, a, b *vnet.Node, n int) int {
	t.Helper()
	got := 0
	b.Handle("faults.ping", func(msg vnet.Message, _ vnet.Addr) { got++ })
	defer b.Handle("faults.ping", nil)
	for i := 0; i < n; i++ {
		i := i
		s.Kernel.After(time.Duration(i)*100*time.Millisecond, func() {
			m := a.NewMessage(b.Addr(), "faults.ping", 64, 1, i)
			a.SendTo(b.Addr(), m)
		})
	}
	if err := s.RunFor(time.Duration(n)*100*time.Millisecond + 2*time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	return got
}

func TestParseRoundTrip(t *testing.T) {
	text := `
		30s crash 5
		50s recover 5          # back up
		30s rsu-down 0; 60s rsu-up 0
		40s partition 1500,-20 400 20s
		55s loss 0.3 10s
		56s loss 0.1
		70s kill-controller 0
	`
	plan, err := Parse(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(plan) != 8 {
		t.Fatalf("parsed %d events, want 8", len(plan))
	}
	want := Event{At: 40 * time.Second, Kind: Partition, Center: geo.Point{X: 1500, Y: -20}, Radius: 400, Dur: 20 * time.Second}
	if !reflect.DeepEqual(plan[4], want) {
		t.Errorf("partition event = %+v, want %+v", plan[4], want)
	}
	if plan[6].Dur != 0 {
		t.Errorf("open-ended loss got Dur %v", plan[6].Dur)
	}
	// The plan language round-trips: String() re-parses to the same plan.
	again, err := Parse(plan.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", plan.String(), err)
	}
	if !reflect.DeepEqual(plan, again) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", plan, again)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"banana crash 5",      // unparseable time
		"10s melt 3",          // unknown kind
		"10s crash",           // missing target
		"10s crash 1 2",       // too many args
		"10s crash -4",        // negative target
		"10s loss 1.5",        // probability out of range
		"10s partition 3 4",   // malformed point
		"10s partition 0,0 0", // zero radius
		"10s loss 0.2 -5s",    // negative duration
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted, want error", bad)
		}
	}
}

func TestScheduleRequiresKillHook(t *testing.T) {
	s := testScenario(t, 1, 4)
	in, err := NewInjector(s)
	if err != nil {
		t.Fatalf("injector: %v", err)
	}
	plan := Plan{{At: time.Second, Kind: KillController, Target: 0}}
	if err := in.Schedule(plan); err == nil {
		t.Fatal("Schedule accepted kill-controller without a hook")
	}
	fired := -1
	in.OnControllerKill(func(idx int) { fired = idx })
	if err := in.Schedule(plan); err != nil {
		t.Fatalf("Schedule with hook: %v", err)
	}
	if err := s.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Errorf("kill hook fired with %d, want 0", fired)
	}
	if in.Stats().Applied != 1 {
		t.Errorf("Applied = %d, want 1", in.Stats().Applied)
	}
}

func TestCrashRecover(t *testing.T) {
	s := testScenario(t, 2, 4)
	in, err := NewInjector(s)
	if err != nil {
		t.Fatalf("injector: %v", err)
	}
	ids := s.VehicleIDs()
	a, _ := s.Node(ids[0])
	b, _ := s.Node(ids[1])

	if got := pingCount(t, s, a, b, 5); got == 0 {
		t.Fatal("no delivery even before any fault")
	}
	in.CrashNode(b.Addr())
	if !in.Crashed(b.Addr()) {
		t.Error("Crashed() false after CrashNode")
	}
	if got := pingCount(t, s, a, b, 5); got != 0 {
		t.Errorf("crashed node received %d frames, want 0", got)
	}
	in.RecoverNode(b.Addr())
	if got := pingCount(t, s, a, b, 5); got == 0 {
		t.Error("no delivery after recover")
	}
	if in.Stats().DroppedFrames == 0 {
		t.Error("crash dropped no frames")
	}
}

func TestRSUDownViaPlan(t *testing.T) {
	s := testScenario(t, 3, 4)
	in, err := NewInjector(s)
	if err != nil {
		t.Fatalf("injector: %v", err)
	}
	plan, err := Parse("1s rsu-down 0; 4s rsu-up 0")
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Schedule(plan); err != nil {
		t.Fatal(err)
	}
	rsu := s.RSUs[0]
	if err := s.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !in.Crashed(rsu.Addr()) {
		t.Error("RSU not silenced after rsu-down fired")
	}
	if err := s.RunFor(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if in.Crashed(rsu.Addr()) {
		t.Error("RSU still silenced after rsu-up fired")
	}
	if got := in.Stats().Applied; got != 2 {
		t.Errorf("Applied = %d, want 2", got)
	}
	if lg := in.Log(); len(lg) != 2 || !strings.Contains(lg[0], "rsu-down") {
		t.Errorf("log = %q, want two entries starting with rsu-down", lg)
	}
}

func TestPartitionCutsBoundaryOnly(t *testing.T) {
	s := testScenario(t, 4, 6)
	in, err := NewInjector(s)
	if err != nil {
		t.Fatalf("injector: %v", err)
	}
	ids := s.VehicleIDs()
	a, _ := s.Node(ids[0])
	b, _ := s.Node(ids[1])
	c, _ := s.Node(ids[2])

	// Isolate a tight region around a: only a is inside, so a↔b crosses
	// the boundary while b↔c is wholly outside.
	heal := in.StartPartition(a.Position(), 1)
	if got := pingCount(t, s, a, b, 5); got != 0 {
		t.Errorf("boundary-crossing traffic delivered %d, want 0", got)
	}
	if got := pingCount(t, s, b, c, 5); got == 0 {
		t.Error("wholly-outside traffic blocked by partition")
	}
	heal()
	if got := pingCount(t, s, a, b, 5); got == 0 {
		t.Error("no delivery after partition healed")
	}
}

func TestLossBurstHeals(t *testing.T) {
	s := testScenario(t, 5, 4)
	in, err := NewInjector(s)
	if err != nil {
		t.Fatalf("injector: %v", err)
	}
	plan, err := Parse("0s loss 1.0 3s")
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Schedule(plan); err != nil {
		t.Fatal(err)
	}
	ids := s.VehicleIDs()
	a, _ := s.Node(ids[0])
	b, _ := s.Node(ids[1])
	// Total loss: nothing arrives during the burst (pings sent over the
	// first 500ms, ARQ gives up well before the 3s heal).
	got := 0
	b.Handle("faults.ping", func(msg vnet.Message, _ vnet.Addr) { got++ })
	for i := 0; i < 5; i++ {
		i := i
		s.Kernel.After(time.Duration(i)*100*time.Millisecond, func() {
			m := a.NewMessage(b.Addr(), "faults.ping", 64, 1, i)
			a.SendTo(b.Addr(), m)
		})
	}
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("p=1.0 loss delivered %d frames, want 0", got)
	}
	b.Handle("faults.ping", nil)
	// After the burst ends delivery resumes.
	if err := s.RunFor(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := pingCount(t, s, a, b, 5); got == 0 {
		t.Error("no delivery after loss burst ended")
	}
}

func TestCloseDisarms(t *testing.T) {
	s := testScenario(t, 6, 4)
	in, err := NewInjector(s)
	if err != nil {
		t.Fatalf("injector: %v", err)
	}
	ids := s.VehicleIDs()
	a, _ := s.Node(ids[0])
	b, _ := s.Node(ids[1])
	in.CrashNode(b.Addr())
	in.Close()
	if got := pingCount(t, s, a, b, 5); got == 0 {
		t.Error("closed injector still blocks frames")
	}
}

// TestCutTracksDeterministicFaults: Cut mirrors the deterministic frame
// filter — crashes on either end, isolations and partition boundaries —
// while loss bursts, being probabilistic, never register.
func TestCutTracksDeterministicFaults(t *testing.T) {
	s := testScenario(t, 11, 6)
	in, err := NewInjector(s)
	if err != nil {
		t.Fatalf("injector: %v", err)
	}
	ids := s.VehicleIDs()
	a, _ := s.Node(ids[0])
	b, _ := s.Node(ids[1])
	c, _ := s.Node(ids[2])

	if in.Cut(a.Addr(), b.Addr()) {
		t.Error("healthy pair reported cut")
	}

	in.CrashNode(b.Addr())
	if !in.Cut(a.Addr(), b.Addr()) || !in.Cut(b.Addr(), a.Addr()) {
		t.Error("crash on either end must cut both directions")
	}
	if in.Cut(a.Addr(), c.Addr()) {
		t.Error("uninvolved pair cut by crash")
	}
	in.RecoverNode(b.Addr())
	if in.Cut(a.Addr(), b.Addr()) {
		t.Error("recovered pair still cut")
	}

	healIso := in.StartIsolation(a.Addr(), nil)
	if !in.Cut(a.Addr(), b.Addr()) {
		t.Error("isolation boundary not cut")
	}
	if in.Cut(b.Addr(), c.Addr()) {
		t.Error("pair outside the isolation cut")
	}
	healIso()
	if in.Cut(a.Addr(), b.Addr()) {
		t.Error("healed isolation still cut")
	}

	// A tight partition around a cuts only boundary crossings.
	healPart := in.StartPartition(a.Position(), 1)
	if !in.Cut(a.Addr(), b.Addr()) {
		t.Error("partition boundary not cut")
	}
	if in.Cut(b.Addr(), c.Addr()) {
		t.Error("pair wholly outside the partition cut")
	}
	healPart()
	if in.Cut(a.Addr(), b.Addr()) {
		t.Error("healed partition still cut")
	}

	// Certain loss drops every frame, but Cut is about deterministic
	// faults only: reachability probes must not see — or perturb — it.
	in.SetLoss(1.0)
	if in.Cut(a.Addr(), b.Addr()) {
		t.Error("loss burst reported as cut")
	}
}

// TestCutDoesNotPerturbLossStream: two injectors with the same seed must
// drop the same frames even when one of them answers Cut probes between
// draws — Cut never consumes from the loss stream.
func TestCutDoesNotPerturbLossStream(t *testing.T) {
	drops := func(probe bool) []bool {
		s := testScenario(t, 12, 4)
		in, err := NewInjector(s)
		if err != nil {
			t.Fatalf("injector: %v", err)
		}
		ids := s.VehicleIDs()
		a, _ := s.Node(ids[0])
		b, _ := s.Node(ids[1])
		in.SetLoss(0.5)
		seq := make([]bool, 0, 64)
		for i := 0; i < 64; i++ {
			if probe {
				in.Cut(a.Addr(), b.Addr())
				in.Cut(b.Addr(), a.Addr())
			}
			seq = append(seq, in.blocked(a.Addr(), b.Addr()))
		}
		return seq
	}
	if !reflect.DeepEqual(drops(false), drops(true)) {
		t.Error("Cut probes changed the loss stream's drop sequence")
	}
}
