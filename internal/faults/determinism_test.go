package faults

import (
	"fmt"
	"testing"
	"time"

	"vcloud/internal/geo"
	"vcloud/internal/roadnet"
	"vcloud/internal/scenario"
	"vcloud/internal/sim"
	"vcloud/internal/vcloud"
)

// runDrill runs one seeded RSU-outage + partition + loss drill against an
// infrastructure cloud and returns a byte-exact fingerprint of everything
// observable: cloud stats, injector stats and log, and radio counters.
func runDrill(t *testing.T, seed int64) string {
	t.Helper()
	net, err := roadnet.ParkingLot(roadnet.ParkingLotSpec{Aisles: 3, AisleLenM: 120, AisleGapM: 30})
	if err != nil {
		t.Fatalf("parking lot: %v", err)
	}
	s, err := scenario.New(scenario.Spec{Seed: seed, Network: net, NumVehicles: 10, Parked: true})
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	for _, p := range []geo.Point{{X: 0, Y: 0}, {X: 80, Y: 0}} {
		if _, err := s.AddRSU(p); err != nil {
			t.Fatalf("rsu: %v", err)
		}
	}
	stats := &vcloud.Stats{}
	dep, err := vcloud.Deploy(s, vcloud.Infrastructure, vcloud.DeployConfig{}, stats)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	in, err := NewInjector(s)
	if err != nil {
		t.Fatalf("injector: %v", err)
	}
	plan, err := Parse(`
		8s  rsu-down 0
		10s partition 0,0 60 8s
		12s loss 0.25 6s
		24s rsu-up 0
	`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := in.Schedule(plan); err != nil {
		t.Fatalf("schedule: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		i := i
		s.Kernel.After(sim.Time(i)*1500*time.Millisecond, func() {
			_ = dep.SubmitAnywhere(vcloud.Task{Ops: 1500, InputBytes: 1000, OutputBytes: 500}, nil)
		})
	}
	if err := s.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("cloud=%+v injector=%+v log=%q radio=%+v",
		*stats, in.Stats(), in.Log(), s.Medium.Stats())
}

// TestDrillDeterminism is the repo's determinism guard for the fault
// subsystem: the same seeded fault-plan scenario must reproduce
// byte-identical statistics run over run.
func TestDrillDeterminism(t *testing.T) {
	a := runDrill(t, 42)
	b := runDrill(t, 42)
	if a != b {
		t.Errorf("same seed diverged:\nrun1: %s\nrun2: %s", a, b)
	}
	// And the seed actually matters: a different seed must not be forced
	// to the same trajectory (guards against a fingerprint that ignores
	// the interesting state).
	c := runDrill(t, 43)
	if a == c {
		t.Error("different seeds produced identical fingerprints; fingerprint too weak")
	}
}
