package faults

import (
	"math"
	"testing"
)

// FuzzParse drives the textual plan parser with arbitrary input. Two
// properties must hold: Parse never panics, and any plan it accepts is
// (a) valid under Plan.Validate — in particular free of the NaN/Inf
// values float parsing would happily produce — and (b) round-trips
// through the plan language: String() re-parses to a plan of the same
// shape.
func FuzzParse(f *testing.F) {
	// Seeds: the README/DESIGN example plans, plus edge shapes.
	f.Add("30s rsu-down 0; 45s partition 1500,0 400 20s; 60s loss 0.3 10s; 80s rsu-up 0")
	f.Add("40s kill-controller 0")
	f.Add("12s kill-member 7")
	f.Add("30s crash 5\n50s recover 5")
	f.Add("1s partition -1500,-20 400")
	f.Add("0s loss 1")
	f.Add("# comment only\n\n;;")
	f.Add("55s loss 0.3 10s # drop 30% for 10s")
	f.Add("1s loss NaN")
	f.Add("1s partition NaN,Inf +Inf 1s")
	f.Add("9999999h crash 2147483647")
	f.Add("-5s crash 1")

	f.Fuzz(func(t *testing.T, text string) {
		plan, err := Parse(text)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if verr := plan.Validate(); verr != nil {
			t.Fatalf("Parse accepted a plan its own Validate rejects: %v\nplan: %q", verr, plan.String())
		}
		for i, e := range plan {
			switch e.Kind {
			case Partition:
				if math.IsNaN(e.Radius) || math.IsInf(e.Radius, 0) ||
					math.IsNaN(e.Center.X) || math.IsInf(e.Center.X, 0) ||
					math.IsNaN(e.Center.Y) || math.IsInf(e.Center.Y, 0) {
					t.Fatalf("event %d: non-finite partition accepted: %+v", i, e)
				}
			case Loss:
				if math.IsNaN(e.Prob) || e.Prob < 0 || e.Prob > 1 {
					t.Fatalf("event %d: out-of-range loss prob accepted: %v", i, e.Prob)
				}
			}
		}
		// Round-trip: the rendered plan must parse back to the same shape.
		again, err := Parse(plan.String())
		if err != nil {
			t.Fatalf("round-trip parse failed: %v\nrendered: %q", err, plan.String())
		}
		if len(again) != len(plan) {
			t.Fatalf("round-trip length %d != %d\nrendered: %q", len(again), len(plan), plan.String())
		}
		for i := range plan {
			if plan[i].Kind != again[i].Kind || plan[i].At != again[i].At || plan[i].Target != again[i].Target {
				t.Fatalf("round-trip event %d differs: %+v vs %+v", i, plan[i], again[i])
			}
		}
	})
}

// TestParseRejectsNonFinite pins the fuzz-found class directly: plan
// text with NaN/Inf floats must be rejected, not scheduled.
func TestParseRejectsNonFinite(t *testing.T) {
	for _, text := range []string{
		"1s loss NaN",
		"1s loss +Inf",
		"1s partition NaN,0 400",
		"1s partition 0,Inf 400",
		"1s partition 0,0 NaN",
		"1s partition 0,0 Inf 5s",
	} {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) accepted non-finite input", text)
		}
	}
	// Finite plans still parse.
	if _, err := Parse("1s partition -10,20 400 5s; 2s loss 0.5"); err != nil {
		t.Errorf("finite plan rejected: %v", err)
	}
}
