// Package faults is the deterministic fault-injection subsystem: it
// schedules infrastructure failures — node crashes and recoveries, RSU
// outages, region-scoped radio partitions, message-loss bursts and
// controller kills — against the discrete-event kernel, from a
// programmatic Plan or the textual plan language cmd/vcloudsim accepts
// via -faults.
//
// The paper's dependability argument (§III, §V.A) is that a vehicular
// cloud must keep operating when the infrastructure it leans on fails
// mid-run. Making that claim measurable requires failures that are (a)
// scripted, so the same disaster replays exactly, and (b) seeded, so any
// probabilistic element (loss bursts) draws from the kernel's
// reproducible streams. Every fault here acts through the radio medium's
// stackable frame filters (radio.Medium.AddBlocker), so a "crashed" node
// is radio-silent yet recoverable, and fault injection composes with
// whatever SetBlocked filter an attack experiment already installed.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"vcloud/internal/geo"
	"vcloud/internal/radio"
	"vcloud/internal/scenario"
	"vcloud/internal/sim"
)

// Kind names a fault action.
type Kind string

// Fault kinds.
const (
	// Crash makes a vehicle radio-silent (process + radio failure): every
	// frame from or to it is dropped until Recover.
	Crash Kind = "crash"
	// Recover undoes Crash for a vehicle.
	Recover Kind = "recover"
	// RSUDown makes a road-side unit radio-silent until RSUUp; the target
	// is the RSU's creation index (scenario.RSUs order).
	RSUDown Kind = "rsu-down"
	// RSUUp undoes RSUDown.
	RSUUp Kind = "rsu-up"
	// Partition isolates a circular region: frames crossing the region
	// boundary are dropped (traffic wholly inside or wholly outside still
	// flows). Heals after Dur, or never when Dur is zero.
	Partition Kind = "partition"
	// Loss drops every frame independently with probability Prob, drawn
	// from the kernel's "faults" stream. Ends after Dur, or never when
	// Dur is zero.
	Loss Kind = "loss"
	// KillController invokes the injector's controller-kill hook with
	// Target as the controller index — the cloud layer decides what a
	// dead controller means (see vcloud.Controller.Crash).
	KillController Kind = "kill-controller"
	// KillMember kills the cloud-member process on a vehicle: the node
	// goes radio-silent like Crash AND the member-kill hook
	// (OnMemberKill) fires with Target as the vehicle ID, so the cloud
	// layer can stop the member agent — abandoning its running work —
	// instead of merely muting its radio. A crashed member's compute
	// survives a radio outage; a killed member's does not.
	KillMember Kind = "kill-member"
	// Isolate cuts every frame crossing the boundary of a node set:
	// Target (plus the optional Keep peers) on one side, everyone else
	// on the other. Unlike Partition it is node-targeted, not
	// region-scoped — the split-brain primitive that cuts a controller
	// off from its standby while both keep reachable neighbours. Heals
	// after Dur, or never when Dur is zero.
	Isolate Kind = "isolate"
)

// Event is one scheduled fault.
type Event struct {
	// At is when the fault strikes.
	At sim.Time
	// Kind selects the action.
	Kind Kind
	// Target is the vehicle ID (Crash/Recover), RSU index (RSUDown/RSUUp)
	// or controller index (KillController).
	Target int
	// Center and Radius define the Partition region in meters.
	Center geo.Point
	Radius float64
	// Prob is the Loss drop probability in [0,1].
	Prob float64
	// Keep lists node addresses isolated together with Target (Isolate
	// only): they stay reachable from Target but are cut from the rest.
	Keep []int
	// Dur auto-heals Partition, Loss and Isolate events; zero means
	// "until the end of the run".
	Dur sim.Time
}

// String renders the event in the plan language (parseable by Parse).
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", e.At, e.Kind)
	switch e.Kind {
	case Crash, Recover, RSUDown, RSUUp, KillController, KillMember:
		fmt.Fprintf(&b, " %d", e.Target)
	case Isolate:
		fmt.Fprintf(&b, " %d", e.Target)
		for _, k := range e.Keep {
			fmt.Fprintf(&b, ",%d", k)
		}
	case Partition:
		fmt.Fprintf(&b, " %g,%g %g", e.Center.X, e.Center.Y, e.Radius)
	case Loss:
		fmt.Fprintf(&b, " %g", e.Prob)
	}
	if e.Dur > 0 {
		fmt.Fprintf(&b, " %s", e.Dur)
	}
	return b.String()
}

// Validate checks one event's sanity.
func (e Event) Validate() error {
	if e.At < 0 {
		return fmt.Errorf("faults: event time must be >= 0, got %v", e.At)
	}
	switch e.Kind {
	case Crash, Recover, RSUDown, RSUUp, KillController, KillMember:
		if e.Target < 0 {
			return fmt.Errorf("faults: %s target must be >= 0, got %d", e.Kind, e.Target)
		}
	case Isolate:
		if e.Target < 0 {
			return fmt.Errorf("faults: %s target must be >= 0, got %d", e.Kind, e.Target)
		}
		for _, k := range e.Keep {
			if k < 0 {
				return fmt.Errorf("faults: %s keep address must be >= 0, got %d", e.Kind, k)
			}
		}
	case Partition:
		// NaN compares false against everything, so the range checks
		// must reject non-finite values explicitly — ParseFloat happily
		// produces NaN/Inf from plan text like "partition NaN,0 Inf".
		if !isFinite(e.Radius) || e.Radius <= 0 {
			return fmt.Errorf("faults: partition radius must be positive and finite, got %v", e.Radius)
		}
		if !isFinite(e.Center.X) || !isFinite(e.Center.Y) {
			return fmt.Errorf("faults: partition center must be finite, got %g,%g", e.Center.X, e.Center.Y)
		}
	case Loss:
		if !isFinite(e.Prob) || e.Prob < 0 || e.Prob > 1 {
			return fmt.Errorf("faults: loss probability must be in [0,1], got %v", e.Prob)
		}
	default:
		return fmt.Errorf("faults: unknown kind %q", e.Kind)
	}
	if e.Dur < 0 {
		return fmt.Errorf("faults: duration must be >= 0, got %v", e.Dur)
	}
	return nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Plan is an ordered fault schedule. Events at equal times apply in plan
// order (the kernel breaks timestamp ties by scheduling sequence).
type Plan []Event

// Validate checks every event.
func (p Plan) Validate() error {
	for i, e := range p {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// String renders the plan one event per line, in the plan language.
func (p Plan) String() string {
	lines := make([]string, len(p))
	for i, e := range p {
		lines[i] = e.String()
	}
	return strings.Join(lines, "\n")
}

// Stats reports what the injector did.
type Stats struct {
	// Applied counts fault events that fired (including auto-heals).
	Applied int
	// DroppedFrames counts frames the active faults suppressed.
	DroppedFrames uint64
}

// Injector binds fault plans to a scenario: it installs one stackable
// frame filter on the radio medium and schedules plan events on the
// kernel. One injector serves any number of Schedule calls.
type Injector struct {
	s   *scenario.Scenario
	rng *rand.Rand

	// dead holds radio-silenced node addresses (crashed vehicles and
	// downed RSUs).
	dead map[radio.NodeID]bool
	// partitions holds active region isolations keyed by install order.
	partitions map[int]partitionRegion
	nextPart   int
	// isolations holds active node-set isolations keyed by install order.
	isolations map[int]map[radio.NodeID]bool
	nextIso    int
	lossProb   float64

	killCtl func(idx int)
	killMem func(id int)
	remove  func()
	log     []string
	stats   Stats
}

type partitionRegion struct {
	center geo.Point
	radius float64
}

// NewInjector creates an injector over the scenario and installs its
// frame filter on the medium.
func NewInjector(s *scenario.Scenario) (*Injector, error) {
	if s == nil {
		return nil, fmt.Errorf("faults: scenario must not be nil")
	}
	in := &Injector{
		s:          s,
		rng:        s.Kernel.NewStream("faults"),
		dead:       make(map[radio.NodeID]bool),
		partitions: make(map[int]partitionRegion),
		isolations: make(map[int]map[radio.NodeID]bool),
	}
	in.remove = s.Medium.AddBlocker(in.blocked)
	return in, nil
}

// OnControllerKill installs the hook KillController events invoke. The
// cloud layer typically wires this to Controller.Crash on the indexed
// active controller.
func (in *Injector) OnControllerKill(fn func(idx int)) { in.killCtl = fn }

// OnMemberKill installs the hook KillMember events invoke with the
// vehicle ID, on top of the radio silence the event itself applies. The
// cloud layer typically wires this to Member.Stop on the vehicle's
// member agent.
func (in *Injector) OnMemberKill(fn func(id int)) { in.killMem = fn }

// Close removes the injector's frame filter; active faults stop applying.
func (in *Injector) Close() {
	if in.remove != nil {
		in.remove()
		in.remove = nil
	}
}

// Stats returns a copy of the injector counters.
func (in *Injector) Stats() Stats { return in.stats }

// Log returns the applied-fault log, one line per fired event.
func (in *Injector) Log() []string {
	out := make([]string, len(in.log))
	copy(out, in.log)
	return out
}

// Schedule validates the plan and schedules every event on the kernel.
// KillController events require a hook (OnControllerKill) to be
// installed first.
func (in *Injector) Schedule(p Plan) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for _, e := range p {
		if e.Kind == KillController && in.killCtl == nil {
			return fmt.Errorf("faults: plan contains %s but no controller-kill hook is installed", KillController)
		}
	}
	for _, e := range p {
		e := e
		in.s.Kernel.At(e.At, func() { in.apply(e) })
	}
	return nil
}

func (in *Injector) apply(e Event) {
	in.stats.Applied++
	in.log = append(in.log, fmt.Sprintf("%s %s", in.s.Kernel.Now(), e.describe()))
	switch e.Kind {
	case Crash:
		in.CrashNode(radio.NodeID(e.Target))
	case Recover:
		in.RecoverNode(radio.NodeID(e.Target))
	case RSUDown:
		if addr, ok := in.rsuAddr(e.Target); ok {
			in.CrashNode(addr)
		}
	case RSUUp:
		if addr, ok := in.rsuAddr(e.Target); ok {
			in.RecoverNode(addr)
		}
	case Partition:
		heal := in.StartPartition(e.Center, e.Radius)
		if e.Dur > 0 {
			in.s.Kernel.After(e.Dur, func() {
				in.stats.Applied++
				in.log = append(in.log, fmt.Sprintf("%s partition healed at %g,%g", in.s.Kernel.Now(), e.Center.X, e.Center.Y))
				heal()
			})
		}
	case Isolate:
		keep := make([]radio.NodeID, 0, len(e.Keep))
		for _, k := range e.Keep {
			keep = append(keep, radio.NodeID(k))
		}
		heal := in.StartIsolation(radio.NodeID(e.Target), keep)
		if e.Dur > 0 {
			in.s.Kernel.After(e.Dur, func() {
				in.stats.Applied++
				in.log = append(in.log, fmt.Sprintf("%s isolation healed around %d", in.s.Kernel.Now(), e.Target))
				heal()
			})
		}
	case Loss:
		in.SetLoss(e.Prob)
		if e.Dur > 0 {
			in.s.Kernel.After(e.Dur, func() {
				in.stats.Applied++
				in.log = append(in.log, fmt.Sprintf("%s loss burst ended", in.s.Kernel.Now()))
				in.SetLoss(0)
			})
		}
	case KillController:
		if in.killCtl != nil {
			in.killCtl(e.Target)
		}
	case KillMember:
		in.CrashNode(radio.NodeID(e.Target))
		if in.killMem != nil {
			in.killMem(e.Target)
		}
	}
}

func (e Event) describe() string {
	switch e.Kind {
	case Isolate:
		d := "until end"
		if e.Dur > 0 {
			d = fmt.Sprintf("for %s", e.Dur)
		}
		return fmt.Sprintf("isolate %d with %d kept peers (%s)", e.Target, len(e.Keep), d)
	case Partition:
		d := "until end"
		if e.Dur > 0 {
			d = fmt.Sprintf("for %s", e.Dur)
		}
		return fmt.Sprintf("partition r=%gm at %g,%g (%s)", e.Radius, e.Center.X, e.Center.Y, d)
	case Loss:
		d := "until end"
		if e.Dur > 0 {
			d = fmt.Sprintf("for %s", e.Dur)
		}
		return fmt.Sprintf("loss p=%g (%s)", e.Prob, d)
	default:
		return fmt.Sprintf("%s %d", e.Kind, e.Target)
	}
}

// rsuAddr resolves an RSU creation index to its address.
func (in *Injector) rsuAddr(idx int) (radio.NodeID, bool) {
	if idx < 0 || idx >= len(in.s.RSUs) {
		return 0, false
	}
	return in.s.RSUs[idx].Addr(), true
}

// CrashNode silences a node immediately (programmatic form of Crash /
// RSUDown).
func (in *Injector) CrashNode(addr radio.NodeID) { in.dead[addr] = true }

// KillMember kills a vehicle's member process immediately (programmatic
// form of the KillMember event): radio silence plus the member-kill
// hook, so the cloud layer stops the member agent and its running work
// dies with it.
func (in *Injector) KillMember(id int) {
	in.CrashNode(radio.NodeID(id))
	if in.killMem != nil {
		in.killMem(id)
	}
}

// RecoverNode restores a silenced node.
func (in *Injector) RecoverNode(addr radio.NodeID) { delete(in.dead, addr) }

// Crashed reports whether a node is currently radio-silenced.
func (in *Injector) Crashed(addr radio.NodeID) bool { return in.dead[addr] }

// SetLoss sets the global frame-drop probability (0 disables).
func (in *Injector) SetLoss(p float64) { in.lossProb = p }

// StartPartition isolates a circular region immediately and returns a
// heal function (programmatic form of Partition).
func (in *Injector) StartPartition(center geo.Point, radius float64) (heal func()) {
	id := in.nextPart
	in.nextPart++
	in.partitions[id] = partitionRegion{center: center, radius: radius}
	return func() { delete(in.partitions, id) }
}

// StartIsolation cuts the node set {center} ∪ keep off from every other
// node immediately and returns a heal function (programmatic form of
// Isolate). Traffic inside the set, and among the outsiders, still
// flows — the targeted split-brain cut.
func (in *Injector) StartIsolation(center radio.NodeID, keep []radio.NodeID) (heal func()) {
	set := map[radio.NodeID]bool{center: true}
	for _, k := range keep {
		set[k] = true
	}
	id := in.nextIso
	in.nextIso++
	in.isolations[id] = set
	return func() { delete(in.isolations, id) }
}

// Cut reports whether frames between from and to are currently severed
// by a deterministic fault — a crash on either end, an isolation or a
// partition boundary between them. Unlike the frame filter it never
// draws from the loss stream, so layers above (the storage service's
// membership view, invariant checkers) can probe reachability without
// perturbing the reproducible loss sequence.
func (in *Injector) Cut(from, to radio.NodeID) bool {
	if in.dead[from] || in.dead[to] {
		return true
	}
	if len(in.isolations) > 0 && in.isolationCut(from, to) {
		return true
	}
	if len(in.partitions) > 0 && in.partitionCut(from, to) {
		return true
	}
	return false
}

// blocked is the frame filter: crash silences, isolations and partitions
// cut boundary crossings, loss bursts drop at random. Checks run in a
// fixed order so the loss stream's draws stay reproducible.
func (in *Injector) blocked(from, to radio.NodeID) bool {
	if len(in.dead) > 0 && (in.dead[from] || in.dead[to]) {
		in.stats.DroppedFrames++
		return true
	}
	if len(in.isolations) > 0 && in.isolationCut(from, to) {
		in.stats.DroppedFrames++
		return true
	}
	if len(in.partitions) > 0 && in.partitionCut(from, to) {
		in.stats.DroppedFrames++
		return true
	}
	if in.lossProb > 0 && in.rng.Float64() < in.lossProb {
		in.stats.DroppedFrames++
		return true
	}
	return false
}

func (in *Injector) isolationCut(from, to radio.NodeID) bool {
	// Evaluate sets in install order for reproducibility.
	ids := make([]int, 0, len(in.isolations))
	for id := range in.isolations {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		set := in.isolations[id]
		if set[from] != set[to] {
			return true
		}
	}
	return false
}

func (in *Injector) partitionCut(from, to radio.NodeID) bool {
	fp, fok := in.s.Medium.Position(from)
	tp, tok := in.s.Medium.Position(to)
	if !fok || !tok {
		return false
	}
	// Evaluate regions in install order for reproducibility.
	ids := make([]int, 0, len(in.partitions))
	for id := range in.partitions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		r := in.partitions[id]
		if (fp.Dist(r.center) <= r.radius) != (tp.Dist(r.center) <= r.radius) {
			return true
		}
	}
	return false
}
