// Package mobility simulates vehicle movement on a road network. It
// provides the Intelligent Driver Model (IDM) for car following, random
// trip generation over shortest paths, parked-vehicle behaviour for the
// stationary-cloud scenarios, and dwell-time signals used by the v-cloud
// task scheduler (both an oracle and realistic estimators).
//
// The Manager advances all vehicles on a fixed tick driven by the sim
// kernel, maintaining per-lane ordering for leader lookup and a spatial
// index for radio-range neighbor queries.
package mobility

import (
	"fmt"
	"math"
	"sort"

	"vcloud/internal/geo"
	"vcloud/internal/roadnet"
)

// VehicleID identifies a vehicle across all subsystems.
type VehicleID int32

// Profile captures per-vehicle driving and equipment characteristics. The
// paper (Fig. 1) stresses heterogeneity: automation level, sensors and
// compute differ per vehicle and matter for task allocation.
type Profile struct {
	// AutomationLevel follows SAE J3016: 0 (none) .. 5 (full automation).
	AutomationLevel int
	// DesiredSpeedFactor scales the edge speed limit (e.g. 1.1 = drives
	// 10% above the limit).
	DesiredSpeedFactor float64
	// MaxAccel and ComfortDecel are the IDM a and b parameters (m/s²).
	MaxAccel, ComfortDecel float64
	// Headway is the IDM desired time gap T in seconds.
	Headway float64
	// MinGap is the IDM jam distance s0 in meters.
	MinGap float64
	// CPU is compute capacity in abstract ops/sec; Storage in MB. Used by
	// the v-cloud resource pool.
	CPU     float64
	Storage float64
	// Sensors lists equipped sensor kinds (e.g. "camera", "lidar").
	Sensors []string
}

// DefaultProfile returns a mid-range vehicle profile.
func DefaultProfile() Profile {
	return Profile{
		AutomationLevel:    3,
		DesiredSpeedFactor: 1.0,
		MaxAccel:           1.5,
		ComfortDecel:       2.0,
		Headway:            1.5,
		MinGap:             2.0,
		CPU:                1000,
		Storage:            256,
		Sensors:            []string{"camera", "gps"},
	}
}

// State is the externally visible kinematic state of a vehicle.
type State struct {
	ID      VehicleID
	Pos     geo.Point
	Speed   float64 // m/s
	Heading float64 // radians
	Edge    roadnet.EdgeID
	Offset  float64 // meters along Edge
	Parked  bool
}

// Velocity returns the velocity vector of the state.
func (s State) Velocity() geo.Vector {
	return geo.HeadingVector(s.Heading).Scale(s.Speed)
}

// vehicle is the internal mutable record.
type vehicle struct {
	id      VehicleID
	profile Profile

	edge   roadnet.EdgeID
	lane   int
	offset float64 // meters from edge start
	speed  float64
	parked bool
	gone   bool // departed the simulation entirely

	route    []roadnet.EdgeID // remaining edges after the current one
	routeIdx int              // index into route of the next edge
	dest     roadnet.NodeID
	// laneCooldown throttles lane changes (seconds remaining).
	laneCooldown float64
	// loop, when non-nil, is a closed route driven forever (bus line).
	loop []roadnet.EdgeID
}

// Manager owns all vehicles and advances them in lock-step.
type Manager struct {
	net      *roadnet.Network
	index    *geo.GridIndex
	vehicles map[VehicleID]*vehicle
	// perLane[edge][lane] lists vehicle ids on that lane, unordered; the
	// leader scan is linear, which is fine at realistic per-lane counts.
	perLane map[roadnet.EdgeID][][]VehicleID
	nextID  VehicleID
	// tripRNG drives random destination choice; injected so runs are
	// deterministic.
	randFn func(n int) int
	// departures notifies subscribers when a vehicle leaves (parks off or
	// exits the scenario); used by vcloud for churn accounting.
	departures []func(VehicleID)
}

// NewManager creates a mobility manager on the given network. cellSize
// configures the spatial index and should match the radio range. randFn
// must return a uniform int in [0,n); pass rng.Intn.
func NewManager(net *roadnet.Network, cellSize float64, randFn func(n int) int) (*Manager, error) {
	if net == nil {
		return nil, fmt.Errorf("mobility: network must not be nil")
	}
	if randFn == nil {
		return nil, fmt.Errorf("mobility: randFn must not be nil")
	}
	idx, err := geo.NewGridIndex(net.Bounds(), cellSize)
	if err != nil {
		return nil, fmt.Errorf("mobility: %w", err)
	}
	return &Manager{
		net:      net,
		index:    idx,
		vehicles: make(map[VehicleID]*vehicle),
		perLane:  make(map[roadnet.EdgeID][][]VehicleID),
		randFn:   randFn,
	}, nil
}

// Network returns the underlying road network.
func (m *Manager) Network() *roadnet.Network { return m.net }

// Index returns the spatial index over vehicle positions. Callers must
// treat it as read-only.
func (m *Manager) Index() *geo.GridIndex { return m.index }

// OnDeparture registers fn to be called when a vehicle leaves the
// simulation.
func (m *Manager) OnDeparture(fn func(VehicleID)) {
	if fn != nil {
		m.departures = append(m.departures, fn)
	}
}

// AddVehicle places a vehicle at the start of edge e with the given
// profile, driving random trips. It returns the new vehicle's ID.
func (m *Manager) AddVehicle(e roadnet.EdgeID, offset float64, profile Profile) (VehicleID, error) {
	if int(e) >= m.net.NumEdges() || e < 0 {
		return 0, fmt.Errorf("mobility: edge %d out of range", e)
	}
	edge := m.net.Edge(e)
	if offset < 0 || offset > edge.Length {
		return 0, fmt.Errorf("mobility: offset %v outside edge length %v", offset, edge.Length)
	}
	normalizeProfile(&profile)
	id := m.nextID
	m.nextID++
	v := &vehicle{
		id:      id,
		profile: profile,
		edge:    e,
		lane:    int(id) % edge.Lanes,
		offset:  offset,
		speed:   0,
	}
	m.vehicles[id] = v
	m.addToLane(v)
	m.index.Update(int32(id), m.posOf(v))
	m.pickNewDestination(v)
	return id, nil
}

// AddParkedVehicle places a stationary vehicle (stationary v-cloud node).
func (m *Manager) AddParkedVehicle(e roadnet.EdgeID, offset float64, profile Profile) (VehicleID, error) {
	id, err := m.AddVehicle(e, offset, profile)
	if err != nil {
		return 0, err
	}
	v := m.vehicles[id]
	v.parked = true
	return id, nil
}

func normalizeProfile(p *Profile) {
	d := DefaultProfile()
	if p.DesiredSpeedFactor <= 0 {
		p.DesiredSpeedFactor = d.DesiredSpeedFactor
	}
	if p.MaxAccel <= 0 {
		p.MaxAccel = d.MaxAccel
	}
	if p.ComfortDecel <= 0 {
		p.ComfortDecel = d.ComfortDecel
	}
	if p.Headway <= 0 {
		p.Headway = d.Headway
	}
	if p.MinGap <= 0 {
		p.MinGap = d.MinGap
	}
	if p.CPU <= 0 {
		p.CPU = d.CPU
	}
	if p.Storage <= 0 {
		p.Storage = d.Storage
	}
}

// Remove departs a vehicle from the simulation (e.g. it parked and turned
// off, or drove out of the modeled area).
func (m *Manager) Remove(id VehicleID) {
	v, ok := m.vehicles[id]
	if !ok {
		return
	}
	v.gone = true
	m.removeFromLane(v)
	m.index.Remove(int32(id))
	delete(m.vehicles, id)
	for _, fn := range m.departures {
		fn(id)
	}
}

// NumVehicles returns the live vehicle count.
func (m *Manager) NumVehicles() int { return len(m.vehicles) }

// State returns the kinematic state of a vehicle.
func (m *Manager) State(id VehicleID) (State, bool) {
	v, ok := m.vehicles[id]
	if !ok {
		return State{}, false
	}
	return State{
		ID:      id,
		Pos:     m.posOf(v),
		Speed:   v.speed,
		Heading: m.net.EdgeHeading(v.edge),
		Edge:    v.edge,
		Offset:  v.offset,
		Parked:  v.parked,
	}, true
}

// Profile returns the vehicle's profile.
func (m *Manager) Profile(id VehicleID) (Profile, bool) {
	v, ok := m.vehicles[id]
	if !ok {
		return Profile{}, false
	}
	return v.profile, true
}

// IDs appends all live vehicle IDs to dst in ascending order and returns
// it. Sorting here (rather than at each caller) keeps map iteration order
// out of every downstream consumer: creation order, RNG draw sequences
// and tie-breaks all follow this slice.
func (m *Manager) IDs(dst []VehicleID) []VehicleID {
	start := len(dst)
	for id := range m.vehicles {
		dst = append(dst, id)
	}
	added := dst[start:]
	sort.Slice(added, func(i, j int) bool { return added[i] < added[j] })
	return dst
}

func (m *Manager) posOf(v *vehicle) geo.Point {
	edge := m.net.Edge(v.edge)
	t := 0.0
	if edge.Length > 0 {
		t = v.offset / edge.Length
	}
	return m.net.PosAlong(v.edge, t)
}

func (m *Manager) addToLane(v *vehicle) {
	lanes := m.perLane[v.edge]
	if lanes == nil {
		lanes = make([][]VehicleID, m.net.Edge(v.edge).Lanes)
		m.perLane[v.edge] = lanes
	}
	if v.lane >= len(lanes) {
		v.lane = len(lanes) - 1
	}
	lanes[v.lane] = append(lanes[v.lane], v.id)
}

func (m *Manager) removeFromLane(v *vehicle) {
	lanes := m.perLane[v.edge]
	if v.lane >= len(lanes) {
		return
	}
	ids := lanes[v.lane]
	for i, id := range ids {
		if id == v.id {
			ids[i] = ids[len(ids)-1]
			lanes[v.lane] = ids[:len(ids)-1]
			return
		}
	}
}

// leaderGap returns the bumper gap and speed of the nearest vehicle ahead
// on the same edge+lane, or (inf, 0, false) when the lane ahead is clear.
func (m *Manager) leaderGap(v *vehicle) (gap, leaderSpeed float64, ok bool) {
	gap = math.Inf(1)
	for _, id := range m.laneMates(v) {
		if id == v.id {
			continue
		}
		o := m.vehicles[id]
		if o.offset <= v.offset {
			continue
		}
		if g := o.offset - v.offset; g < gap {
			gap, leaderSpeed, ok = g, o.speed, true
		}
	}
	return gap, leaderSpeed, ok
}

func (m *Manager) laneMates(v *vehicle) []VehicleID {
	lanes := m.perLane[v.edge]
	if v.lane >= len(lanes) {
		return nil
	}
	return lanes[v.lane]
}

// idmAccel computes the Intelligent Driver Model acceleration.
func idmAccel(p Profile, speed, desired, gap, leaderSpeed float64, hasLeader bool) float64 {
	if desired <= 0 {
		desired = 0.1
	}
	free := 1 - math.Pow(speed/desired, 4)
	if !hasLeader {
		return p.MaxAccel * free
	}
	dv := speed - leaderSpeed
	sStar := p.MinGap + math.Max(0, speed*p.Headway+speed*dv/(2*math.Sqrt(p.MaxAccel*p.ComfortDecel)))
	if gap < 0.1 {
		gap = 0.1
	}
	inter := math.Pow(sStar/gap, 2)
	return p.MaxAccel * (free - inter)
}

// Step advances all vehicles by dt seconds. It is called from a sim
// kernel ticker.
func (m *Manager) Step(dt float64) {
	if dt <= 0 {
		return
	}
	// Two phases: compute accelerations against the current snapshot,
	// then integrate, so update order does not leak into dynamics.
	type upd struct {
		v     *vehicle
		accel float64
	}
	// Iterate in ID order: map order would perturb RNG draw sequences
	// downstream and break run reproducibility.
	ids := m.IDs(nil)
	sortVehicleIDs(ids)
	updates := make([]upd, 0, len(ids))
	for _, id := range ids {
		v := m.vehicles[id]
		if v.parked {
			continue
		}
		m.maybeChangeLane(v, dt)
		edge := m.net.Edge(v.edge)
		desired := edge.SpeedLimit * v.profile.DesiredSpeedFactor
		gap, ls, hasLeader := m.leaderGap(v)
		a := idmAccel(v.profile, v.speed, desired, gap, ls, hasLeader)
		updates = append(updates, upd{v, a})
	}
	for _, u := range updates {
		v := u.v
		v.speed += u.accel * dt
		if v.speed < 0 {
			v.speed = 0
		}
		v.offset += v.speed * dt
		for v.offset >= m.net.Edge(v.edge).Length {
			if !m.advanceEdge(v) {
				break
			}
		}
		if !v.gone {
			m.index.Update(int32(v.id), m.posOf(v))
		}
	}
}

// advanceEdge moves v onto the next edge of its route, wrapping the
// leftover offset. It returns false when the vehicle stopped (reached its
// destination and a new one could not be assigned, which does not happen
// with random trips, or it departed).
func (m *Manager) advanceEdge(v *vehicle) bool {
	leftover := v.offset - m.net.Edge(v.edge).Length
	if v.routeIdx >= len(v.route) {
		// Arrived at destination: start a new trip from here.
		m.pickNewDestination(v)
		if v.routeIdx >= len(v.route) {
			// No route found (isolated node); park in place.
			v.offset = m.net.Edge(v.edge).Length
			v.speed = 0
			return false
		}
	}
	next := v.route[v.routeIdx]
	v.routeIdx++
	m.removeFromLane(v)
	v.edge = next
	nextLanes := m.net.Edge(next).Lanes
	v.lane = int(v.id) % nextLanes
	v.offset = leftover
	m.addToLane(v)
	return true
}

// pickNewDestination assigns the vehicle's next route: loop vehicles
// restart their loop; others draw a fresh random destination reachable
// from the end of the current edge.
func (m *Manager) pickNewDestination(v *vehicle) {
	if v.loop != nil {
		// The current edge is the last loop edge; continue from the top.
		v.route = v.loop
		v.routeIdx = 0
		return
	}
	from := m.net.Edge(v.edge).To
	for attempt := 0; attempt < 8; attempt++ {
		dst := roadnet.NodeID(m.randFn(m.net.NumNodes()))
		if dst == from {
			continue
		}
		path, err := m.net.ShortestPath(from, dst)
		if err != nil || len(path) == 0 {
			continue
		}
		v.route = path
		v.routeIdx = 0
		v.dest = dst
		return
	}
	v.route = nil
	v.routeIdx = 0
}

func sortVehicleIDs(ids []VehicleID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// RemainingRoute returns the edges the vehicle will traverse after its
// current edge. The slice is a copy.
func (m *Manager) RemainingRoute(id VehicleID) []roadnet.EdgeID {
	v, ok := m.vehicles[id]
	if !ok || v.routeIdx >= len(v.route) {
		return nil
	}
	out := make([]roadnet.EdgeID, len(v.route)-v.routeIdx)
	copy(out, v.route[v.routeIdx:])
	return out
}
