package mobility

import (
	"math"

	"vcloud/internal/geo"
	"vcloud/internal/sim"
)

// Hash draw domains for the shard-invariant stepper. Distinct tags keep
// the spawn, turn and speed draws decorrelated even when the other
// counters collide.
const (
	drawSpawn uint64 = 0x5b
	drawTurn  uint64 = 0x71
	drawSpeed uint64 = 0x9d
)

// ShardVehicle is the vehicle state used by the geo-sharded world. Unlike
// the Manager's road-network vehicles it is a plain value: a handoff
// between shards is a struct copy carried through one cross-shard event,
// after which the new owner continues the trajectory bit-for-bit.
//
// All randomness in its evolution comes from counter hashes keyed by
// (world seed, vehicle id, tick) — never from a shared RNG stream — so
// the trajectory is a pure function of the model and is identical no
// matter which shard executes each step, or how the world is sharded.
type ShardVehicle struct {
	ID      int32
	Pos     geo.Point
	Heading float64 // radians
	Speed   float64 // m/s
	// OdoMM is the odometer in integer millimeters. Integer accumulation
	// makes fleet-total distance an exact sum: per-shard subtotals add up
	// to the serial total regardless of grouping.
	OdoMM int64
	// Hops counts shard border crossings (handoffs). It is zero in a
	// one-shard world, so it is reported as sharding telemetry, never as
	// part of determinism-compared model output.
	Hops int32
}

// SpawnShardVehicle places vehicle id deterministically inside bounds with
// a hash-drawn heading and a speed in [speedMin, speedMax].
func SpawnShardVehicle(seed uint64, id int32, bounds geo.Rect, speedMin, speedMax float64) ShardVehicle {
	u := uint64(uint32(id))
	return ShardVehicle{
		ID: id,
		Pos: geo.Point{
			X: bounds.Min.X + sim.HashUnit(seed, drawSpawn, u, 0)*bounds.Width(),
			Y: bounds.Min.Y + sim.HashUnit(seed, drawSpawn, u, 1)*bounds.Height(),
		},
		Heading: sim.HashUnit(seed, drawSpawn, u, 2) * 2 * math.Pi,
		Speed:   speedMin + sim.HashUnit(seed, drawSpawn, u, 3)*(speedMax-speedMin),
	}
}

// Step advances the vehicle by one tick of dt seconds: heading jitter,
// an occasional hash-phased speed redraw, straight-line motion, and a
// reflective bounce off the world edges. The update reads nothing but its
// arguments and the receiver, so any shard that owns the state computes
// the identical next state.
func (v *ShardVehicle) Step(seed uint64, tick uint64, bounds geo.Rect, dt, speedMin, speedMax float64) {
	u := uint64(uint32(v.ID))
	v.Heading += (sim.HashUnit(seed, drawTurn, u, tick) - 0.5) * 0.6
	// Redraw the cruise speed every 32 ticks, phase-shifted per vehicle so
	// the fleet does not resample in lock-step.
	if (tick+u)%32 == 0 {
		v.Speed = speedMin + sim.HashUnit(seed, drawSpeed, u, tick)*(speedMax-speedMin)
	}
	step := v.Speed * dt
	v.Pos.X += math.Cos(v.Heading) * step
	v.Pos.Y += math.Sin(v.Heading) * step
	if v.Pos.X < bounds.Min.X {
		v.Pos.X = 2*bounds.Min.X - v.Pos.X
		v.Heading = math.Pi - v.Heading
	} else if v.Pos.X > bounds.Max.X {
		v.Pos.X = 2*bounds.Max.X - v.Pos.X
		v.Heading = math.Pi - v.Heading
	}
	if v.Pos.Y < bounds.Min.Y {
		v.Pos.Y = 2*bounds.Min.Y - v.Pos.Y
		v.Heading = -v.Heading
	} else if v.Pos.Y > bounds.Max.Y {
		v.Pos.Y = 2*bounds.Max.Y - v.Pos.Y
		v.Heading = -v.Heading
	}
	v.OdoMM += int64(step * 1000)
}

// MaxStep returns the largest displacement one Step can produce. The
// sharded world's ghost halo must cover the radio range plus two of these
// (sender and receiver each move at most one step between ghost refresh
// and beacon evaluation).
func MaxStep(speedMax, dt float64) float64 { return speedMax * dt }
