package mobility

import (
	"testing"

	"vcloud/internal/geo"
)

func shardTestBounds() geo.Rect {
	return geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 2000, Y: 2000})
}

// TestShardVehicleStepDeterministic replays a trajectory from a mid-run
// handoff copy and checks it continues bit-for-bit: the struct copy that
// crosses a shard border carries everything the stepper reads.
func TestShardVehicleStepDeterministic(t *testing.T) {
	bounds := shardTestBounds()
	v := SpawnShardVehicle(42, 7, bounds, 5, 30)
	var mid ShardVehicle
	for tick := uint64(0); tick < 100; tick++ {
		if tick == 50 {
			mid = v // handoff: plain struct copy
		}
		v.Step(42, tick, bounds, 1, 5, 30)
	}
	for tick := uint64(50); tick < 100; tick++ {
		mid.Step(42, tick, bounds, 1, 5, 30)
	}
	if mid != v {
		t.Fatalf("replay from handoff copy diverged:\n  orig %+v\n  copy %+v", v, mid)
	}
}

// TestShardVehicleSeedSensitivity checks different seeds and ids give
// different trajectories (the hash draws are actually keyed).
func TestShardVehicleSeedSensitivity(t *testing.T) {
	bounds := shardTestBounds()
	a := SpawnShardVehicle(1, 7, bounds, 5, 30)
	b := SpawnShardVehicle(2, 7, bounds, 5, 30)
	c := SpawnShardVehicle(1, 8, bounds, 5, 30)
	if a.Pos == b.Pos || a.Pos == c.Pos {
		t.Fatalf("spawn ignores seed or id: %v %v %v", a.Pos, b.Pos, c.Pos)
	}
}

// TestShardVehicleStaysInBounds runs long enough to hit every wall and
// checks the reflective bounce keeps positions inside the world.
func TestShardVehicleStaysInBounds(t *testing.T) {
	bounds := shardTestBounds()
	for id := int32(0); id < 20; id++ {
		v := SpawnShardVehicle(9, id, bounds, 5, 30)
		if !bounds.Contains(v.Pos) {
			t.Fatalf("vehicle %d spawned outside bounds at %v", id, v.Pos)
		}
		for tick := uint64(0); tick < 2000; tick++ {
			v.Step(9, tick, bounds, 1, 5, 30)
			if !bounds.Contains(v.Pos) {
				t.Fatalf("vehicle %d escaped to %v at tick %d", id, v.Pos, tick)
			}
		}
		if v.OdoMM <= 0 {
			t.Fatalf("vehicle %d odometer did not advance", id)
		}
	}
}

// TestShardVehicleOdometerBounds sanity-checks the integer odometer
// against the speed envelope.
func TestShardVehicleOdometerBounds(t *testing.T) {
	bounds := shardTestBounds()
	v := SpawnShardVehicle(3, 1, bounds, 10, 20)
	const ticks = 500
	for tick := uint64(0); tick < ticks; tick++ {
		v.Step(3, tick, bounds, 1, 10, 20)
	}
	if v.OdoMM < 10*1000*ticks || v.OdoMM > 20*1000*ticks {
		t.Fatalf("odometer %d mm outside [%d, %d]", v.OdoMM, 10*1000*ticks, 20*1000*ticks)
	}
	if MaxStep(20, 1) != 20 {
		t.Fatalf("MaxStep(20, 1) = %v", MaxStep(20, 1))
	}
}
