package mobility

import "math"

// Lane changing (MOBIL-flavoured): a vehicle blocked behind a slower
// leader moves to an adjacent lane when the target lane offers a clearly
// better gap and the move is safe for the target lane's follower. This
// is the overtaking behaviour multi-lane highways need for realistic
// density/speed distributions; single-lane edges are unaffected.
const (
	// laneChangeCooldown prevents oscillation (seconds between changes).
	laneChangeCooldown = 5.0
	// blockedGap is the leader gap (meters) below which a vehicle starts
	// considering a change.
	blockedGap = 50.0
	// gapAdvantage is the factor by which the target lane's gap must
	// beat the current one.
	gapAdvantage = 1.5
	// safeFollowerGap is the minimum clearance to the target lane's
	// rear vehicle.
	safeFollowerGap = 15.0
)

// maybeChangeLane evaluates a lane change for v and performs it when
// warranted. dt ages the cooldown.
func (m *Manager) maybeChangeLane(v *vehicle, dt float64) {
	if v.laneCooldown > 0 {
		v.laneCooldown -= dt
		return
	}
	edge := m.net.Edge(v.edge)
	if edge.Lanes < 2 {
		return
	}
	desired := edge.SpeedLimit * v.profile.DesiredSpeedFactor
	curGap, _, hasLeader := m.leaderGap(v)
	// Only vehicles actually held up consider changing.
	if !hasLeader || curGap > blockedGap || v.speed > desired*0.9 {
		return
	}
	best := -1
	bestGap := curGap * gapAdvantage
	for _, lane := range []int{v.lane - 1, v.lane + 1} {
		if lane < 0 || lane >= edge.Lanes {
			continue
		}
		gap, follower := m.laneGaps(v, lane)
		if follower < safeFollowerGap {
			continue // unsafe cut-in
		}
		if gap > bestGap {
			best, bestGap = lane, gap
		}
	}
	if best < 0 {
		return
	}
	m.removeFromLane(v)
	v.lane = best
	m.addToLane(v)
	v.laneCooldown = laneChangeCooldown
}

// laneGaps returns the forward gap to the nearest leader and the
// backward gap to the nearest follower in the given lane of v's edge.
// Open road returns +Inf gaps.
func (m *Manager) laneGaps(v *vehicle, lane int) (leader, follower float64) {
	leader, follower = math.Inf(1), math.Inf(1)
	lanes := m.perLane[v.edge]
	if lane >= len(lanes) {
		return leader, follower
	}
	for _, id := range lanes[lane] {
		o := m.vehicles[id]
		switch {
		case o.offset > v.offset:
			if g := o.offset - v.offset; g < leader {
				leader = g
			}
		case o.offset < v.offset:
			if g := v.offset - o.offset; g < follower {
				follower = g
			}
		default:
			// Exactly side by side: treat as zero follower gap (unsafe).
			follower = 0
		}
	}
	return leader, follower
}
