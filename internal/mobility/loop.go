package mobility

import (
	"fmt"

	"vcloud/internal/roadnet"
)

// AddLoopVehicle places a vehicle that drives the given closed route
// forever — the bus lines Sun et al. [36] exploit as a predictable
// message-delivery backbone in urban VANETs. The route must be
// contiguous and closed (the last edge must end where the first
// begins). Loop vehicles are maximally predictable: their dwell in any
// region is exactly periodic, which makes them ideal relays and cloud
// anchors.
func (m *Manager) AddLoopVehicle(route []roadnet.EdgeID, offset float64, profile Profile) (VehicleID, error) {
	if len(route) < 2 {
		return 0, fmt.Errorf("mobility: loop route needs at least 2 edges, got %d", len(route))
	}
	for _, e := range route {
		if int(e) >= m.net.NumEdges() || e < 0 {
			return 0, fmt.Errorf("mobility: loop edge %d out of range", e)
		}
	}
	for i, e := range route {
		next := route[(i+1)%len(route)]
		if m.net.Edge(e).To != m.net.Edge(next).From {
			return 0, fmt.Errorf("mobility: loop not contiguous at position %d (edge %d -> %d)", i, e, next)
		}
	}
	id, err := m.AddVehicle(route[0], offset, profile)
	if err != nil {
		return 0, err
	}
	v := m.vehicles[id]
	v.loop = append([]roadnet.EdgeID(nil), route...)
	// Replace the random trip with the loop continuation.
	v.route = v.loop[1:]
	v.routeIdx = 0
	return id, nil
}

// OnLoop reports whether the vehicle drives a fixed loop.
func (m *Manager) OnLoop(id VehicleID) bool {
	v, ok := m.vehicles[id]
	return ok && v.loop != nil
}
