package mobility

import (
	"math"

	"vcloud/internal/geo"
	"vcloud/internal/roadnet"
)

// DwellMode selects the information a dwell-time estimator may use. The
// paper (§III.A) identifies dwell ("duration of stay") estimation as the
// central difficulty of v-cloud task allocation; E7 ablates these modes.
type DwellMode int

const (
	// DwellSpeedOnly extrapolates the current velocity vector in a
	// straight line — the information a stranger vehicle can observe from
	// beacons alone.
	DwellSpeedOnly DwellMode = iota + 1
	// DwellRouteAware walks the vehicle's remaining planned route at
	// per-edge expected speeds — information the vehicle itself could
	// share with a scheduler (at a privacy cost, see §III.B).
	DwellRouteAware
)

// String implements fmt.Stringer.
func (d DwellMode) String() string {
	switch d {
	case DwellSpeedOnly:
		return "speed-only"
	case DwellRouteAware:
		return "route-aware"
	default:
		return "unknown"
	}
}

// DwellTier buckets a dwell estimate (seconds, as returned by
// EstimateDwell) into coarse placement tiers for reliability-weighted
// replica placement: 3 for parked or long stayers (>= 10 min,
// including +Inf), 2 for >= 2 min, 1 for >= 30 s, and 0 for short or
// unknown (0) dwell. Coarse buckets keep placement stable under
// estimator jitter — a vehicle sliding from 601 s to 599 s of
// predicted dwell should not reshuffle every fragment.
func DwellTier(seconds float64) int {
	switch {
	case seconds >= 600:
		return 3
	case seconds >= 120:
		return 2
	case seconds >= 30:
		return 1
	default:
		return 0
	}
}

// EstimateDwell predicts how many seconds vehicle id will remain within
// radius of center. It returns +Inf when the estimator predicts the
// vehicle never leaves (e.g. parked), and 0 when the vehicle is already
// outside or unknown.
func (m *Manager) EstimateDwell(id VehicleID, center geo.Point, radius float64, mode DwellMode) float64 {
	v, ok := m.vehicles[id]
	if !ok {
		return 0
	}
	pos := m.posOf(v)
	if pos.Dist(center) > radius {
		return 0
	}
	if v.parked {
		return math.Inf(1)
	}
	switch mode {
	case DwellSpeedOnly:
		return dwellStraightLine(pos, m.net.EdgeHeading(v.edge), v.speed, center, radius)
	case DwellRouteAware:
		return m.dwellAlongRoute(v, center, radius)
	default:
		return 0
	}
}

// dwellStraightLine solves |pos + t·vel - center| = radius for the
// smallest positive t.
func dwellStraightLine(pos geo.Point, heading, speed float64, center geo.Point, radius float64) float64 {
	if speed < 0.1 {
		// Nearly stopped: assume it stays for a long but finite time at
		// crawl speed toward the boundary.
		speed = 0.1
	}
	vel := geo.HeadingVector(heading).Scale(speed)
	rel := pos.Sub(center)
	// Quadratic: |rel + t·vel|² = r².
	a := vel.Dot(vel)
	b := 2 * rel.Dot(vel)
	c := rel.Dot(rel) - radius*radius
	disc := b*b - 4*a*c
	if disc < 0 || a == 0 {
		return math.Inf(1)
	}
	t := (-b + math.Sqrt(disc)) / (2 * a)
	if t < 0 {
		return 0
	}
	return t
}

// dwellAlongRoute walks the current edge remainder plus the planned route
// polyline, accumulating time at each edge's expected speed, until the
// path exits the circle. The walk is capped at 1 hour of predicted travel.
func (m *Manager) dwellAlongRoute(v *vehicle, center geo.Point, radius float64) float64 {
	const horizon = 3600.0
	total := 0.0
	// Expected speed on an edge: limit × driver factor, floored to the
	// vehicle's current speed category so a jammed vehicle is not assumed
	// to teleport.
	speedOn := func(e roadnet.EdgeID) float64 {
		edge := m.net.Edge(e)
		s := edge.SpeedLimit * v.profile.DesiredSpeedFactor
		if s < 1 {
			s = 1
		}
		return s
	}
	// Walk the remaining part of the current edge in 10 m steps.
	walk := func(eid roadnet.EdgeID, fromOffset float64) (exitAt float64, exited bool) {
		edge := m.net.Edge(eid)
		sp := speedOn(eid)
		const stepM = 10.0
		for off := fromOffset; off < edge.Length; off += stepM {
			t := off / edge.Length
			p := m.net.PosAlong(eid, t)
			if p.Dist(center) > radius {
				return total, true
			}
			adv := math.Min(stepM, edge.Length-off)
			total += adv / sp
			if total > horizon {
				return total, true
			}
		}
		return 0, false
	}
	if at, exited := walk(v.edge, v.offset); exited {
		return at
	}
	for i := v.routeIdx; i < len(v.route); i++ {
		if at, exited := walk(v.route[i], 0); exited {
			return at
		}
	}
	// Route ends inside the circle; beyond that the vehicle picks a new
	// random trip, unknowable to the estimator. Assume it lingers one
	// more crossing of the circle diameter at its desired speed.
	edge := m.net.Edge(v.edge)
	sp := edge.SpeedLimit * v.profile.DesiredSpeedFactor
	if sp < 1 {
		sp = 1
	}
	return total + 2*radius/sp
}
