package mobility

import (
	"math"
	"math/rand"
	"testing"

	"vcloud/internal/geo"
	"vcloud/internal/roadnet"
)

func newTestManager(t testing.TB, net *roadnet.Network, seed int64) *Manager {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m, err := NewManager(net, 300, rng.Intn)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

func gridNet(t testing.TB) *roadnet.Network {
	t.Helper()
	n, err := roadnet.Grid(roadnet.GridSpec{Rows: 4, Cols: 4, Spacing: 200, SpeedLimit: 14, Lanes: 1})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func highwayNet(t testing.TB) *roadnet.Network {
	t.Helper()
	n, err := roadnet.Highway(roadnet.HighwaySpec{LengthM: 4000, Segments: 4, SpeedLimit: 30, Lanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(nil, 300, rand.New(rand.NewSource(1)).Intn); err == nil {
		t.Error("nil network should error")
	}
	if _, err := NewManager(gridNet(t), 300, nil); err == nil {
		t.Error("nil randFn should error")
	}
}

func TestAddVehicleValidation(t *testing.T) {
	m := newTestManager(t, gridNet(t), 1)
	if _, err := m.AddVehicle(roadnet.EdgeID(-1), 0, Profile{}); err == nil {
		t.Error("negative edge should error")
	}
	if _, err := m.AddVehicle(roadnet.EdgeID(9999), 0, Profile{}); err == nil {
		t.Error("out-of-range edge should error")
	}
	if _, err := m.AddVehicle(0, -1, Profile{}); err == nil {
		t.Error("negative offset should error")
	}
	if _, err := m.AddVehicle(0, 1e9, Profile{}); err == nil {
		t.Error("offset beyond edge should error")
	}
}

func TestProfileDefaultsApplied(t *testing.T) {
	m := newTestManager(t, gridNet(t), 1)
	id, err := m.AddVehicle(0, 0, Profile{}) // zero profile
	if err != nil {
		t.Fatal(err)
	}
	p, ok := m.Profile(id)
	if !ok {
		t.Fatal("Profile missing")
	}
	if p.MaxAccel <= 0 || p.Headway <= 0 || p.MinGap <= 0 || p.CPU <= 0 {
		t.Errorf("defaults not applied: %+v", p)
	}
}

func TestVehicleAcceleratesTowardDesiredSpeed(t *testing.T) {
	m := newTestManager(t, gridNet(t), 1)
	id, err := m.AddVehicle(0, 0, DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ { // 60 s at 100 ms ticks
		m.Step(0.1)
	}
	st, ok := m.State(id)
	if !ok {
		t.Fatal("vehicle lost")
	}
	if st.Speed < 10 || st.Speed > 15 {
		t.Errorf("cruise speed = %v, want near limit 14", st.Speed)
	}
	if st.Speed > 14.001 {
		t.Errorf("exceeds desired speed: %v", st.Speed)
	}
}

func TestVehicleMovesAlongEdgesAndKeepsDriving(t *testing.T) {
	m := newTestManager(t, gridNet(t), 2)
	id, err := m.AddVehicle(0, 0, DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	start, _ := m.State(id)
	traveled := 0.0
	prev := start.Pos
	for i := 0; i < 3000; i++ { // 5 minutes
		m.Step(0.1)
		st, _ := m.State(id)
		traveled += st.Pos.Dist(prev)
		prev = st.Pos
	}
	// At ~14 m/s for 300 s the vehicle must cover kilometers, i.e. it
	// keeps picking new trips instead of stopping at the first arrival.
	if traveled < 2000 {
		t.Errorf("traveled only %v m in 5 min", traveled)
	}
	if !m.Network().Bounds().Contains(prev) {
		t.Errorf("vehicle escaped bounds: %v", prev)
	}
}

func TestCarFollowingNoOvertakeOnSingleLane(t *testing.T) {
	// A slow leader and a fast follower on one lane: the follower must
	// not pass through the leader.
	net, err := roadnet.Highway(roadnet.HighwaySpec{LengthM: 10000, Segments: 1, SpeedLimit: 30, Lanes: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := newTestManager(t, net, 3)
	slow := DefaultProfile()
	slow.DesiredSpeedFactor = 0.3
	fast := DefaultProfile()
	fast.DesiredSpeedFactor = 1.0
	leader, err := m.AddVehicle(0, 200, slow)
	if err != nil {
		t.Fatal(err)
	}
	follower, err := m.AddVehicle(0, 0, fast)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		m.Step(0.1)
		ls, ok1 := m.State(leader)
		fs, ok2 := m.State(follower)
		if !ok1 || !ok2 {
			t.Fatal("vehicle lost")
		}
		if ls.Edge == fs.Edge && fs.Offset > ls.Offset {
			t.Fatalf("follower overtook leader on single lane at step %d", i)
		}
	}
	fs, _ := m.State(follower)
	ls, _ := m.State(leader)
	if fs.Edge == ls.Edge {
		gap := ls.Offset - fs.Offset
		if gap < 1 {
			t.Errorf("follower tailgates at %v m", gap)
		}
		// Follower should have slowed to roughly leader speed.
		if fs.Speed > ls.Speed+3 {
			t.Errorf("follower speed %v far above leader %v", fs.Speed, ls.Speed)
		}
	}
}

func TestParkedVehicleStaysPut(t *testing.T) {
	m := newTestManager(t, gridNet(t), 4)
	id, err := m.AddParkedVehicle(0, 50, DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	before, _ := m.State(id)
	for i := 0; i < 100; i++ {
		m.Step(0.1)
	}
	after, _ := m.State(id)
	if before.Pos != after.Pos || after.Speed != 0 {
		t.Errorf("parked vehicle moved: %v -> %v", before.Pos, after.Pos)
	}
	if !after.Parked {
		t.Error("state should report parked")
	}
}

func TestRemoveAndDepartureCallback(t *testing.T) {
	m := newTestManager(t, gridNet(t), 5)
	var departed []VehicleID
	m.OnDeparture(func(id VehicleID) { departed = append(departed, id) })
	m.OnDeparture(nil) // ignored
	id, err := m.AddVehicle(0, 0, DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	m.Remove(id)
	if m.NumVehicles() != 0 {
		t.Errorf("NumVehicles = %d", m.NumVehicles())
	}
	if len(departed) != 1 || departed[0] != id {
		t.Errorf("departures = %v", departed)
	}
	m.Remove(id) // double remove is a no-op
	if len(departed) != 1 {
		t.Error("double remove fired callback again")
	}
	if _, ok := m.State(id); ok {
		t.Error("state of removed vehicle should be absent")
	}
}

func TestSpatialIndexTracksVehicles(t *testing.T) {
	m := newTestManager(t, gridNet(t), 6)
	id, err := m.AddVehicle(0, 0, DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		m.Step(0.1)
		st, _ := m.State(id)
		p, ok := m.Index().Position(int32(id))
		if !ok {
			t.Fatal("vehicle missing from index")
		}
		if p.Dist(st.Pos) > 1e-9 {
			t.Fatalf("index position %v != state position %v", p, st.Pos)
		}
	}
}

func TestIDs(t *testing.T) {
	m := newTestManager(t, gridNet(t), 7)
	for i := 0; i < 5; i++ {
		if _, err := m.AddVehicle(0, float64(i*10), DefaultProfile()); err != nil {
			t.Fatal(err)
		}
	}
	ids := m.IDs(nil)
	if len(ids) != 5 {
		t.Errorf("IDs len = %d", len(ids))
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []geo.Point {
		m := newTestManager(t, gridNet(t), 42)
		var ids []VehicleID
		for i := 0; i < 10; i++ {
			id, err := m.AddVehicle(roadnet.EdgeID(i%4), float64(i*7), DefaultProfile())
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		for i := 0; i < 1000; i++ {
			m.Step(0.1)
		}
		var out []geo.Point
		for _, id := range ids {
			st, _ := m.State(id)
			out = append(out, st.Pos)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at vehicle %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRemainingRouteIsCopy(t *testing.T) {
	m := newTestManager(t, gridNet(t), 8)
	id, err := m.AddVehicle(0, 0, DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	r1 := m.RemainingRoute(id)
	if len(r1) == 0 {
		t.Fatal("vehicle should have a route")
	}
	r1[0] = roadnet.EdgeID(-99)
	r2 := m.RemainingRoute(id)
	if r2[0] == roadnet.EdgeID(-99) {
		t.Error("RemainingRoute must return a copy")
	}
}

func TestDwellEstimates(t *testing.T) {
	net := highwayNet(t)
	m := newTestManager(t, net, 9)
	id, err := m.AddVehicle(0, 0, DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	// Warm up so the vehicle is at cruise speed.
	for i := 0; i < 300; i++ {
		m.Step(0.1)
	}
	st, _ := m.State(id)
	center := st.Pos
	radius := 500.0

	speedOnly := m.EstimateDwell(id, center, radius, DwellSpeedOnly)
	routeAware := m.EstimateDwell(id, center, radius, DwellRouteAware)
	// On a straight highway at cruise ~30 m/s, leaving a 500 m circle from
	// its center takes ~16-17 s; both estimators should be in range.
	for name, est := range map[string]float64{"speed-only": speedOnly, "route-aware": routeAware} {
		if est < 5 || est > 60 {
			t.Errorf("%s dwell = %v s, want ~16", name, est)
		}
	}

	// Measure ground truth.
	ticks := 0
	for ; ticks < 10000; ticks++ {
		m.Step(0.1)
		cur, ok := m.State(id)
		if !ok || cur.Pos.Dist(center) > radius {
			break
		}
	}
	truth := float64(ticks) * 0.1
	if math.Abs(routeAware-truth) > 10 {
		t.Errorf("route-aware dwell %v too far from truth %v", routeAware, truth)
	}
}

func TestDwellOutsideAndUnknown(t *testing.T) {
	m := newTestManager(t, gridNet(t), 10)
	id, err := m.AddVehicle(0, 0, DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	far := geo.Point{X: 1e5, Y: 1e5}
	if d := m.EstimateDwell(id, far, 100, DwellRouteAware); d != 0 {
		t.Errorf("dwell outside region = %v, want 0", d)
	}
	if d := m.EstimateDwell(VehicleID(999), geo.Point{}, 100, DwellRouteAware); d != 0 {
		t.Errorf("dwell of unknown vehicle = %v, want 0", d)
	}
	st, _ := m.State(id)
	if d := m.EstimateDwell(id, st.Pos, 100, DwellMode(0)); d != 0 {
		t.Errorf("dwell with invalid mode = %v, want 0", d)
	}
}

func TestDwellParkedIsInfinite(t *testing.T) {
	m := newTestManager(t, gridNet(t), 11)
	id, err := m.AddParkedVehicle(0, 10, DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	st, _ := m.State(id)
	if d := m.EstimateDwell(id, st.Pos, 200, DwellRouteAware); !math.IsInf(d, 1) {
		t.Errorf("parked dwell = %v, want +Inf", d)
	}
}

func TestDwellModeString(t *testing.T) {
	if DwellSpeedOnly.String() != "speed-only" || DwellRouteAware.String() != "route-aware" {
		t.Error("DwellMode strings wrong")
	}
	if DwellMode(0).String() != "unknown" {
		t.Error("zero DwellMode should be unknown")
	}
}

// TestDwellTier pins the placement buckets: boundaries land exactly on
// 30 s / 2 min / 10 min, +Inf (parked) is the top tier, and short or
// unknown (0) dwell is the bottom.
func TestDwellTier(t *testing.T) {
	cases := []struct {
		seconds float64
		want    int
	}{
		{math.Inf(1), 3},
		{3600, 3},
		{600, 3},
		{599.9, 2},
		{120, 2},
		{119.9, 1},
		{30, 1},
		{29.9, 0},
		{1, 0},
		{0, 0},
		{-5, 0},
	}
	for _, c := range cases {
		if got := DwellTier(c.seconds); got != c.want {
			t.Errorf("DwellTier(%v) = %d, want %d", c.seconds, got, c.want)
		}
	}
	// Tiers are monotone in dwell: more predicted time never demotes.
	prev := 0
	for s := 0.0; s <= 700; s += 0.5 {
		tier := DwellTier(s)
		if tier < prev {
			t.Fatalf("DwellTier not monotone at %gs: %d after %d", s, tier, prev)
		}
		prev = tier
	}
}

func TestManyVehiclesStayOnNetwork(t *testing.T) {
	net := gridNet(t)
	m := newTestManager(t, net, 12)
	for i := 0; i < 60; i++ {
		e := roadnet.EdgeID(i % net.NumEdges())
		off := float64(i%5) * 20
		if off > net.Edge(e).Length {
			off = 0
		}
		if _, err := m.AddVehicle(e, off, DefaultProfile()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1200; i++ { // 2 minutes
		m.Step(0.1)
	}
	if m.NumVehicles() != 60 {
		t.Fatalf("vehicles disappeared: %d", m.NumVehicles())
	}
	ids := m.IDs(nil)
	for _, id := range ids {
		st, ok := m.State(id)
		if !ok {
			t.Fatal("state missing")
		}
		if !net.Bounds().Contains(st.Pos) {
			t.Errorf("vehicle %d off network at %v", id, st.Pos)
		}
		if st.Speed < 0 {
			t.Errorf("vehicle %d negative speed %v", id, st.Speed)
		}
	}
}

func BenchmarkStep200Vehicles(b *testing.B) {
	net, err := roadnet.Grid(roadnet.GridSpec{Rows: 6, Cols: 6, Spacing: 200, SpeedLimit: 14, Lanes: 2})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	m, err := NewManager(net, 300, rng.Intn)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		e := roadnet.EdgeID(i % net.NumEdges())
		if _, err := m.AddVehicle(e, 0, DefaultProfile()); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step(0.1)
	}
}

func TestLaneChangeEnablesOvertaking(t *testing.T) {
	// A fast vehicle behind a slow leader on a two-lane highway must
	// eventually change lanes and pass — impossible on a single lane
	// (see TestCarFollowingNoOvertakeOnSingleLane).
	net, err := roadnet.Highway(roadnet.HighwaySpec{LengthM: 10000, Segments: 1, SpeedLimit: 30, Lanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := newTestManager(t, net, 3)
	slow := DefaultProfile()
	slow.DesiredSpeedFactor = 0.3
	fast := DefaultProfile()
	fast.DesiredSpeedFactor = 1.0
	// Both start in lane 0 (ids 0 and... lane = id % lanes, so give the
	// follower id 2 by inserting a parked dummy with id 1 off-edge).
	leader, err := m.AddVehicle(0, 300, slow) // id 0 -> lane 0
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddParkedVehicle(1, 0, slow); err != nil { // id 1, other edge
		t.Fatal(err)
	}
	follower, err := m.AddVehicle(0, 0, fast) // id 2 -> lane 0
	if err != nil {
		t.Fatal(err)
	}
	passed := false
	for i := 0; i < 3000; i++ {
		m.Step(0.1)
		ls, ok1 := m.State(leader)
		fs, ok2 := m.State(follower)
		if !ok1 || !ok2 {
			t.Fatal("vehicle lost")
		}
		if ls.Edge == fs.Edge && fs.Offset > ls.Offset+10 {
			passed = true
			break
		}
	}
	if !passed {
		t.Error("fast vehicle never overtook on a two-lane highway")
	}
}

func TestSingleLaneNeverChanges(t *testing.T) {
	net, err := roadnet.Highway(roadnet.HighwaySpec{LengthM: 5000, Segments: 1, SpeedLimit: 30, Lanes: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := newTestManager(t, net, 4)
	slow := DefaultProfile()
	slow.DesiredSpeedFactor = 0.3
	if _, err := m.AddVehicle(0, 200, slow); err != nil {
		t.Fatal(err)
	}
	fast, err := m.AddVehicle(0, 0, DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		m.Step(0.1)
		st, _ := m.State(fast)
		if st.Edge == 0 {
			// All vehicles must remain in lane 0 of a 1-lane edge (no
			// observable API for lane; the invariant is no overtake).
			ls, _ := m.State(0)
			if ls.Edge == st.Edge && st.Offset > ls.Offset {
				t.Fatal("overtook on a single lane")
			}
		}
	}
}

func TestLoopVehicleStaysOnRoute(t *testing.T) {
	net := gridNet(t)
	m := newTestManager(t, net, 13)
	// Build a closed 4-edge loop around one block: find it by walking.
	start := roadnet.EdgeID(0)
	loop := []roadnet.EdgeID{start}
	cur := start
	for len(loop) < 8 {
		var next roadnet.EdgeID = -1
		for _, cand := range net.Node(net.Edge(cur).To).Out() {
			// Avoid immediate U-turns; close the loop when possible.
			if net.Edge(cand).To == net.Edge(start).From && len(loop) >= 3 {
				next = cand
				break
			}
			if net.Edge(cand).To != net.Edge(cur).From && next < 0 {
				next = cand
			}
		}
		if next < 0 {
			t.Fatal("could not build a loop on the grid")
		}
		loop = append(loop, next)
		cur = next
		if net.Edge(cur).To == net.Edge(start).From {
			break
		}
	}
	id, err := m.AddLoopVehicle(loop, 0, DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	if !m.OnLoop(id) {
		t.Error("OnLoop should report true")
	}
	onLoop := map[roadnet.EdgeID]bool{}
	for _, e := range loop {
		onLoop[e] = true
	}
	visits := map[roadnet.EdgeID]int{}
	for i := 0; i < 6000; i++ { // 10 minutes
		m.Step(0.1)
		st, ok := m.State(id)
		if !ok {
			t.Fatal("loop vehicle lost")
		}
		if !onLoop[st.Edge] {
			t.Fatalf("loop vehicle strayed to edge %d at step %d", st.Edge, i)
		}
		visits[st.Edge]++
	}
	// Every loop edge must have been visited repeatedly (periodicity).
	for _, e := range loop {
		if visits[e] == 0 {
			t.Errorf("loop edge %d never visited", e)
		}
	}
}

func TestLoopValidation(t *testing.T) {
	net := gridNet(t)
	m := newTestManager(t, net, 14)
	if _, err := m.AddLoopVehicle(nil, 0, DefaultProfile()); err == nil {
		t.Error("empty loop should error")
	}
	if _, err := m.AddLoopVehicle([]roadnet.EdgeID{0}, 0, DefaultProfile()); err == nil {
		t.Error("single-edge loop should error")
	}
	// Discontiguous pair.
	if _, err := m.AddLoopVehicle([]roadnet.EdgeID{0, 0}, 0, DefaultProfile()); err == nil {
		t.Error("discontiguous loop should error")
	}
	if _, err := m.AddLoopVehicle([]roadnet.EdgeID{0, 9999}, 0, DefaultProfile()); err == nil {
		t.Error("out-of-range loop edge should error")
	}
}
