package cryptoprim

import (
	"fmt"
	"io"
	"time"
)

// PseudonymPool holds a vehicle's batch of pre-issued pseudonym
// certificates with their signing keys (§IV.B.1: "a huge pool of
// pre-assigned certificates to be used for different rounds of
// communication"). The pool rotates: each Rotate advances to the next
// pseudonym, bounding how long an eavesdropper can link transmissions.
type PseudonymPool struct {
	entries []PseudonymEntry
	current int
	used    int
}

// PseudonymEntry is one pseudonym certificate plus its key pair.
type PseudonymEntry struct {
	Cert Certificate
	Key  KeyPair
}

// IssuePseudonyms has the CA mint n pseudonym certificates with random
// subjects. The caller (the TA in internal/pki) records the
// pseudonym→vehicle mapping for conditional traceability.
func IssuePseudonyms(ca *CA, n int, notAfter time.Duration, rand io.Reader) (*PseudonymPool, []Serial, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("cryptoprim: pool size must be >= 1, got %d", n)
	}
	pool := &PseudonymPool{entries: make([]PseudonymEntry, 0, n)}
	serials := make([]Serial, 0, n)
	for i := 0; i < n; i++ {
		key, err := GenerateKey(rand)
		if err != nil {
			return nil, nil, err
		}
		subject := make([]byte, 16)
		if _, err := io.ReadFull(rand, subject); err != nil {
			return nil, nil, fmt.Errorf("cryptoprim: generating pseudonym subject: %w", err)
		}
		cert, err := ca.Issue(subject, key.Public, notAfter)
		if err != nil {
			return nil, nil, err
		}
		pool.entries = append(pool.entries, PseudonymEntry{Cert: cert, Key: key})
		serials = append(serials, cert.SerialOf())
	}
	return pool, serials, nil
}

// Current returns the active pseudonym.
func (p *PseudonymPool) Current() *PseudonymEntry {
	return &p.entries[p.current]
}

// Rotate advances to the next pseudonym, wrapping around when the pool is
// exhausted (a real system would refill from the TA; the wrap models
// reuse, which costs linkability — tracked by UsedCount vs Size).
func (p *PseudonymPool) Rotate() {
	p.current = (p.current + 1) % len(p.entries)
	p.used++
}

// Size returns the pool size.
func (p *PseudonymPool) Size() int { return len(p.entries) }

// UsedCount returns how many rotations have occurred.
func (p *PseudonymPool) UsedCount() int { return p.used }

// IDChain is the hash-chain one-time identity of randomized
// authentication schemes ([14], [16]): id_i = H(id_{i-1}), revealed in
// reverse so each identity is used once and outsiders cannot link
// successive ones without the seed.
type IDChain struct {
	seed [32]byte
	next uint64
}

// NewIDChain creates a chain from 32 bytes of randomness.
func NewIDChain(rand io.Reader) (*IDChain, error) {
	var seed [32]byte
	if _, err := io.ReadFull(rand, seed[:]); err != nil {
		return nil, fmt.Errorf("cryptoprim: generating id chain seed: %w", err)
	}
	return &IDChain{seed: seed}, nil
}

// Next returns a fresh one-time identity.
func (c *IDChain) Next() [32]byte {
	id := Digest(c.seed[:], uint64Bytes(c.next))
	c.next++
	return id
}

// VerifyChainID lets a party holding the seed confirm that id is the k-th
// identity of the chain (the TA-side traceability path).
func VerifyChainID(seed [32]byte, k uint64, id [32]byte) bool {
	return ChainIDAt(seed, k) == id
}

// ChainIDAt derives the k-th one-time identity of a chain from its seed
// (used by the TA to publish hybrid revocation trapdoor tags).
func ChainIDAt(seed [32]byte, k uint64) [32]byte {
	return Digest(seed[:], uint64Bytes(k))
}

// Seed exposes the chain seed for escrow at the TA.
func (c *IDChain) Seed() [32]byte { return c.seed }
