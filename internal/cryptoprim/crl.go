package cryptoprim

import (
	"encoding/binary"
)

// CRL is a certificate revocation list. Two lookup paths exist so
// experiment E5 can ablate them: a linear scan (what a naive OBU does
// over a downloaded list) and a bloom-filter pre-check that rejects
// non-revoked serials in O(1) with a configurable false-positive rate
// (false positives fall through to the exact scan).
type CRL struct {
	serials []Serial
	index   map[Serial]struct{}
	bloom   []uint64 // bit set
	bloomK  int
}

// NewCRL returns an empty revocation list sized for the expected number
// of entries (the bloom filter is dimensioned at ~10 bits/entry).
func NewCRL(expected int) *CRL {
	if expected < 64 {
		expected = 64
	}
	words := (expected*10 + 63) / 64
	return &CRL{
		index:  make(map[Serial]struct{}, expected),
		bloom:  make([]uint64, words),
		bloomK: 4,
	}
}

// Add revokes a serial. Adding a duplicate is a no-op.
func (c *CRL) Add(s Serial) {
	if _, ok := c.index[s]; ok {
		return
	}
	c.index[s] = struct{}{}
	c.serials = append(c.serials, s)
	for i := 0; i < c.bloomK; i++ {
		c.setBit(c.bloomPos(s, i))
	}
}

// Len returns the number of revoked serials.
func (c *CRL) Len() int { return len(c.serials) }

func (c *CRL) bloomPos(s Serial, k int) uint64 {
	// Derive k positions from different 8-byte windows of the serial,
	// mixed with k.
	off := (k * 7) % (len(s) - 8)
	v := binary.BigEndian.Uint64(s[off:off+8]) ^ uint64(k)*0x9e3779b97f4a7c15
	return v % uint64(len(c.bloom)*64)
}

func (c *CRL) setBit(pos uint64)      { c.bloom[pos/64] |= 1 << (pos % 64) }
func (c *CRL) getBit(pos uint64) bool { return c.bloom[pos/64]&(1<<(pos%64)) != 0 }

// ContainsLinear scans the full list, returning whether s is revoked and
// the number of entries examined (the E5 cost driver).
func (c *CRL) ContainsLinear(s Serial) (revoked bool, scanned int) {
	for i, e := range c.serials {
		if e == s {
			return true, i + 1
		}
	}
	return false, len(c.serials)
}

// ContainsBloom checks the bloom filter first and falls back to the exact
// index only on a positive. scanned reports the equivalent exact-entry
// work (0 for a bloom miss, 1 for an index probe).
func (c *CRL) ContainsBloom(s Serial) (revoked bool, scanned int) {
	for i := 0; i < c.bloomK; i++ {
		if !c.getBit(c.bloomPos(s, i)) {
			return false, 0
		}
	}
	_, ok := c.index[s]
	return ok, 1
}

// Serials returns a copy of the revoked serials (for CRL distribution).
func (c *CRL) Serials() []Serial {
	out := make([]Serial, len(c.serials))
	copy(out, c.serials)
	return out
}
