package cryptoprim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// detRand returns a deterministic randomness source for tests.
func detRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestSignVerifyRoundTrip(t *testing.T) {
	k, err := GenerateKey(detRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if !k.CanSign() {
		t.Fatal("generated key cannot sign")
	}
	msg := []byte("hello v-cloud")
	sig := k.Sign(msg)
	if !Verify(k.Public, msg, sig) {
		t.Error("valid signature rejected")
	}
	if Verify(k.Public, []byte("tampered"), sig) {
		t.Error("tampered message accepted")
	}
	k2, _ := GenerateKey(detRand(2))
	if Verify(k2.Public, msg, sig) {
		t.Error("wrong key accepted")
	}
	if Verify(nil, msg, sig) {
		t.Error("nil key accepted")
	}
	if Verify(k.Public, msg, sig[:10]) {
		t.Error("truncated signature accepted")
	}
}

func TestSignVerifyProperty(t *testing.T) {
	k, err := GenerateKey(detRand(3))
	if err != nil {
		t.Fatal(err)
	}
	f := func(msg []byte) bool {
		return Verify(k.Public, msg, k.Sign(msg))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCAIssueAndCheck(t *testing.T) {
	ca, err := NewCA("TA-root", detRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if ca.Name() != "TA-root" {
		t.Error("name wrong")
	}
	veh, _ := GenerateKey(detRand(2))
	cert, err := ca.Issue([]byte("vehicle-42"), veh.Public, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCert(&cert, ca.PublicKey(), 0); err != nil {
		t.Errorf("valid cert rejected: %v", err)
	}
	// Expired.
	if err := CheckCert(&cert, ca.PublicKey(), 2*time.Hour); err == nil {
		t.Error("expired cert accepted")
	}
	// Wrong issuer key.
	other, _ := NewCA("evil", detRand(3))
	if err := CheckCert(&cert, other.PublicKey(), 0); err == nil {
		t.Error("cert accepted under wrong issuer key")
	}
	// Tampered subject.
	bad := cert
	bad.Subject = []byte("vehicle-43")
	if err := CheckCert(&bad, ca.PublicKey(), 0); err == nil {
		t.Error("tampered cert accepted")
	}
	if err := CheckCert(nil, ca.PublicKey(), 0); err == nil {
		t.Error("nil cert accepted")
	}
}

func TestCAValidation(t *testing.T) {
	if _, err := NewCA("", detRand(1)); err == nil {
		t.Error("empty CA name should error")
	}
	ca, _ := NewCA("x", detRand(1))
	k, _ := GenerateKey(detRand(2))
	if _, err := ca.Issue(nil, k.Public, time.Hour); err == nil {
		t.Error("empty subject should error")
	}
	if _, err := ca.Issue([]byte("s"), k.Public[:5], time.Hour); err == nil {
		t.Error("short key should error")
	}
}

func TestCertSerialStable(t *testing.T) {
	ca, _ := NewCA("TA", detRand(1))
	k, _ := GenerateKey(detRand(2))
	cert, _ := ca.Issue([]byte("v"), k.Public, time.Hour)
	if cert.SerialOf() != cert.SerialOf() {
		t.Error("serial not stable")
	}
	cert2, _ := ca.Issue([]byte("w"), k.Public, time.Hour)
	if cert.SerialOf() == cert2.SerialOf() {
		t.Error("distinct certs share a serial")
	}
}

func TestCRLLinearAndBloomAgree(t *testing.T) {
	c := NewCRL(1000)
	rng := detRand(5)
	var revoked []Serial
	for i := 0; i < 500; i++ {
		var s Serial
		rng.Read(s[:])
		c.Add(s)
		revoked = append(revoked, s)
	}
	if c.Len() != 500 {
		t.Fatalf("Len = %d", c.Len())
	}
	// Every revoked serial must be found by both paths.
	for _, s := range revoked {
		if ok, _ := c.ContainsLinear(s); !ok {
			t.Fatal("linear missed a revoked serial")
		}
		if ok, _ := c.ContainsBloom(s); !ok {
			t.Fatal("bloom missed a revoked serial (impossible for blooms)")
		}
	}
	// Non-revoked serials: linear always correct; bloom may rarely cost a
	// probe but must return not-revoked.
	falseProbes := 0
	for i := 0; i < 2000; i++ {
		var s Serial
		rng.Read(s[:])
		if ok, scanned := c.ContainsLinear(s); ok {
			t.Fatal("linear false positive")
		} else if scanned != c.Len() {
			t.Fatal("linear scan count wrong for a miss")
		}
		ok, scanned := c.ContainsBloom(s)
		if ok {
			t.Fatal("bloom+index returned revoked for fresh serial")
		}
		if scanned > 0 {
			falseProbes++
		}
	}
	// ~10 bits/entry with k=4 keeps false probes low.
	if falseProbes > 200 {
		t.Errorf("bloom false-probe rate too high: %d/2000", falseProbes)
	}
}

func TestCRLDuplicateAdd(t *testing.T) {
	c := NewCRL(10)
	var s Serial
	s[0] = 7
	c.Add(s)
	c.Add(s)
	if c.Len() != 1 {
		t.Errorf("Len after duplicate add = %d", c.Len())
	}
	if got := c.Serials(); len(got) != 1 || got[0] != s {
		t.Errorf("Serials = %v", got)
	}
}

func TestCRLScanCostGrowsLinear(t *testing.T) {
	c := NewCRL(4096)
	rng := detRand(6)
	for i := 0; i < 2000; i++ {
		var s Serial
		rng.Read(s[:])
		c.Add(s)
	}
	var s Serial
	rng.Read(s[:])
	_, scanLinear := c.ContainsLinear(s)
	_, scanBloom := c.ContainsBloom(s)
	if scanLinear != 2000 {
		t.Errorf("linear miss scanned %d, want 2000", scanLinear)
	}
	if scanBloom > 1 {
		t.Errorf("bloom miss scanned %d, want <= 1", scanBloom)
	}
}

func TestGroupSignVerifyOpen(t *testing.T) {
	gm, err := NewGroupManager("cluster-9", detRand(1))
	if err != nil {
		t.Fatal(err)
	}
	alice, err := gm.Enroll("alice", detRand(2))
	if err != nil {
		t.Fatal(err)
	}
	bob, err := gm.Enroll("bob", detRand(3))
	if err != nil {
		t.Fatal(err)
	}
	if gm.NumMembers() != 2 {
		t.Fatalf("NumMembers = %d", gm.NumMembers())
	}
	msg := []byte("brake ahead")
	sig := alice.Sign(msg, 1)
	if !VerifyGroupSig(gm.PublicKey(), msg, sig) {
		t.Error("valid group signature rejected")
	}
	if VerifyGroupSig(gm.PublicKey(), []byte("other"), sig) {
		t.Error("tampered message accepted")
	}
	// Opening identifies the signer; bob's signature opens to bob.
	if got := gm.Open(sig); got != "alice" {
		t.Errorf("Open = %q, want alice", got)
	}
	if got := gm.Open(bob.Sign(msg, 5)); got != "bob" {
		t.Errorf("Open = %q, want bob", got)
	}
	// A foreign group's signature neither verifies nor opens.
	gm2, _ := NewGroupManager("other", detRand(9))
	carol, _ := gm2.Enroll("carol", detRand(10))
	foreign := carol.Sign(msg, 1)
	if VerifyGroupSig(gm.PublicKey(), msg, foreign) {
		t.Error("foreign signature verified")
	}
	if gm.Open(foreign) != "" {
		t.Error("foreign signature opened")
	}
}

func TestGroupSignaturesUnlinkableTags(t *testing.T) {
	gm, _ := NewGroupManager("g", detRand(1))
	alice, _ := gm.Enroll("alice", detRand(2))
	s1 := alice.Sign([]byte("m"), 1)
	s2 := alice.Sign([]byte("m"), 2)
	if s1.Tag == s2.Tag {
		t.Error("tags repeat across nonces (linkable)")
	}
}

func TestGroupRevocation(t *testing.T) {
	gm, _ := NewGroupManager("g", detRand(1))
	alice, _ := gm.Enroll("alice", detRand(2))
	sig := alice.Sign([]byte("m"), 1)
	if !gm.CheckNotRevoked(sig) {
		t.Error("enrolled member reported revoked")
	}
	gm.Revoke("alice")
	if !gm.IsRevoked("alice") {
		t.Error("IsRevoked false after Revoke")
	}
	if gm.CheckNotRevoked(sig) {
		t.Error("revoked member passed revocation check")
	}
	// Re-enrollment clears revocation.
	alice2, _ := gm.Enroll("alice", detRand(3))
	if gm.CheckNotRevoked(alice2.Sign([]byte("m"), 9)) != true {
		t.Error("re-enrolled member rejected")
	}
}

func TestGroupValidation(t *testing.T) {
	if _, err := NewGroupManager("", detRand(1)); err == nil {
		t.Error("empty group id should error")
	}
	gm, _ := NewGroupManager("g", detRand(1))
	if _, err := gm.Enroll("", detRand(2)); err == nil {
		t.Error("empty member id should error")
	}
}

func TestPseudonymPool(t *testing.T) {
	ca, _ := NewCA("TA", detRand(1))
	pool, serials, err := IssuePseudonyms(ca, 5, time.Hour, detRand(2))
	if err != nil {
		t.Fatal(err)
	}
	if pool.Size() != 5 || len(serials) != 5 {
		t.Fatalf("size = %d serials = %d", pool.Size(), len(serials))
	}
	// All pseudonym certs verify under the CA; subjects are distinct.
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		e := pool.Current()
		if err := CheckCert(&e.Cert, ca.PublicKey(), 0); err != nil {
			t.Errorf("pseudonym %d invalid: %v", i, err)
		}
		if seen[string(e.Cert.Subject)] {
			t.Error("pseudonym subject repeats")
		}
		seen[string(e.Cert.Subject)] = true
		pool.Rotate()
	}
	if pool.UsedCount() != 5 {
		t.Errorf("UsedCount = %d", pool.UsedCount())
	}
	// Wrap-around.
	first := pool.Current().Cert.SerialOf()
	if first != serials[0] {
		t.Error("pool did not wrap to the first pseudonym")
	}
	if _, _, err := IssuePseudonyms(ca, 0, time.Hour, detRand(3)); err == nil {
		t.Error("zero pool size should error")
	}
}

func TestIDChain(t *testing.T) {
	c, err := NewIDChain(detRand(1))
	if err != nil {
		t.Fatal(err)
	}
	id0 := c.Next()
	id1 := c.Next()
	if id0 == id1 {
		t.Error("chain ids repeat")
	}
	seed := c.Seed()
	if !VerifyChainID(seed, 0, id0) || !VerifyChainID(seed, 1, id1) {
		t.Error("TA-side chain verification failed")
	}
	if VerifyChainID(seed, 1, id0) {
		t.Error("wrong index verified")
	}
	var otherSeed [32]byte
	if VerifyChainID(otherSeed, 0, id0) {
		t.Error("wrong seed verified")
	}
}

func BenchmarkEd25519Verify(b *testing.B) {
	k, _ := GenerateKey(detRand(1))
	msg := []byte("benchmark message for verification cost")
	sig := k.Sign(msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Verify(k.Public, msg, sig) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkCRLLinearVsBloom(b *testing.B) {
	c := NewCRL(10000)
	rng := detRand(1)
	for i := 0; i < 10000; i++ {
		var s Serial
		rng.Read(s[:])
		c.Add(s)
	}
	var probe Serial
	rng.Read(probe[:])
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.ContainsLinear(probe)
		}
	})
	b.Run("bloom", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.ContainsBloom(probe)
		}
	})
}
