package cryptoprim

import (
	"bytes"
	"crypto/ed25519"
	"fmt"
	"io"
	"time"
)

// Serial uniquely identifies a certificate for revocation purposes.
type Serial [32]byte

// Certificate binds a subject name to a public key, signed by an issuer.
// Subjects are opaque: a real vehicle identity for enrollment certs, a
// random pseudonym for pseudonym certs.
type Certificate struct {
	Subject   []byte
	PubKey    ed25519.PublicKey
	Issuer    []byte
	NotAfter  time.Duration // virtual expiry (sim.Time)
	Signature []byte
}

// WireSize is the approximate on-air size in bytes of an encoded
// certificate (matches typical explicit-certificate sizes in V2X).
const CertWireSize = 180

// tbs returns the to-be-signed encoding of the certificate.
func (c *Certificate) tbs() []byte {
	var buf bytes.Buffer
	buf.Write(c.Subject)
	buf.WriteByte(0)
	buf.Write(c.PubKey)
	buf.WriteByte(0)
	buf.Write(c.Issuer)
	buf.Write(uint64Bytes(uint64(c.NotAfter)))
	return buf.Bytes()
}

// SerialOf returns the certificate's revocation serial (hash of the
// signed portion).
func (c *Certificate) SerialOf() Serial {
	return Serial(Digest(c.tbs()))
}

// CA is a certificate authority: the trusted-authority root or a regional
// authority in the PKI hierarchy.
type CA struct {
	name string
	key  KeyPair
}

// NewCA creates an authority with a fresh key from rand.
func NewCA(name string, rand io.Reader) (*CA, error) {
	if name == "" {
		return nil, fmt.Errorf("cryptoprim: CA name must not be empty")
	}
	key, err := GenerateKey(rand)
	if err != nil {
		return nil, err
	}
	return &CA{name: name, key: key}, nil
}

// Name returns the authority name.
func (ca *CA) Name() string { return ca.name }

// PublicKey returns the authority's verification key, which relying
// parties pin.
func (ca *CA) PublicKey() ed25519.PublicKey { return ca.key.Public }

// Issue signs a certificate for subject/pub valid until notAfter.
func (ca *CA) Issue(subject []byte, pub ed25519.PublicKey, notAfter time.Duration) (Certificate, error) {
	if len(subject) == 0 {
		return Certificate{}, fmt.Errorf("cryptoprim: certificate subject must not be empty")
	}
	if len(pub) != ed25519.PublicKeySize {
		return Certificate{}, fmt.Errorf("cryptoprim: bad public key length %d", len(pub))
	}
	c := Certificate{
		Subject:  append([]byte(nil), subject...),
		PubKey:   append(ed25519.PublicKey(nil), pub...),
		Issuer:   []byte(ca.name),
		NotAfter: notAfter,
	}
	c.Signature = ca.key.Sign(c.tbs())
	return c, nil
}

// CheckCert verifies the certificate's signature under the issuer key and
// its validity at virtual time now.
func CheckCert(c *Certificate, issuerPub ed25519.PublicKey, now time.Duration) error {
	if c == nil {
		return fmt.Errorf("cryptoprim: nil certificate")
	}
	if now > c.NotAfter {
		return fmt.Errorf("cryptoprim: certificate expired at %v (now %v)", c.NotAfter, now)
	}
	if !Verify(issuerPub, c.tbs(), c.Signature) {
		return fmt.Errorf("cryptoprim: certificate signature invalid")
	}
	return nil
}
