package cryptoprim

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"io"
)

// GroupManager realizes the group-signature scheme of the group-based
// authentication protocols (§IV.B, Fig. 5): members sign anonymously
// toward outsiders, any verifier checks against a single group public
// key, and the manager — and only the manager — can open a signature to
// the member identity ("conditional privacy": the exact weakness Fig. 5
// attributes to group-based protocols).
//
// Construction: the manager distributes a shared group signing key to
// enrolled members (so one ed25519 verify suffices), plus a per-member
// secret. A signature carries an opening tag HMAC(memberSecret, nonce)
// that is pseudorandom to outsiders but lets the manager identify the
// member by recomputation. Revoked members' tags are rejected via the
// manager-distributed revocation tokens, mirroring verifier-local
// revocation in real schemes.
type GroupManager struct {
	groupID  string
	groupKey KeyPair
	members  map[string][]byte // member id -> member secret
	revoked  map[string]struct{}
}

// GroupCred is a member's signing credential.
type GroupCred struct {
	GroupID  string
	MemberID string
	secret   []byte
	groupKey KeyPair
}

// GroupSig is a group signature over a message.
type GroupSig struct {
	GroupID string
	Nonce   uint64
	Tag     [32]byte // opening tag: HMAC(memberSecret, nonce)
	Sig     []byte   // ed25519 over (msg || groupID || nonce || tag)
}

// GroupSigWireSize approximates the on-air bytes of a group signature
// (real pairing-based group signatures run 200-400 bytes).
const GroupSigWireSize = 112

// NewGroupManager creates a manager for groupID with fresh keys.
func NewGroupManager(groupID string, rand io.Reader) (*GroupManager, error) {
	if groupID == "" {
		return nil, fmt.Errorf("cryptoprim: group id must not be empty")
	}
	key, err := GenerateKey(rand)
	if err != nil {
		return nil, err
	}
	return &GroupManager{
		groupID:  groupID,
		groupKey: key,
		members:  make(map[string][]byte),
		revoked:  make(map[string]struct{}),
	}, nil
}

// GroupID returns the group identifier.
func (gm *GroupManager) GroupID() string { return gm.groupID }

// PublicKey returns the group verification key.
func (gm *GroupManager) PublicKey() []byte { return gm.groupKey.Public }

// NumMembers returns the enrolled member count (the outsider anonymity
// set size).
func (gm *GroupManager) NumMembers() int { return len(gm.members) }

// Enroll admits a member and returns its credential. Re-enrolling an
// existing member returns a fresh secret (key rotation).
func (gm *GroupManager) Enroll(memberID string, rand io.Reader) (GroupCred, error) {
	if memberID == "" {
		return GroupCred{}, fmt.Errorf("cryptoprim: member id must not be empty")
	}
	secret := make([]byte, 32)
	if _, err := io.ReadFull(rand, secret); err != nil {
		return GroupCred{}, fmt.Errorf("cryptoprim: generating member secret: %w", err)
	}
	gm.members[memberID] = secret
	delete(gm.revoked, memberID)
	return GroupCred{
		GroupID:  gm.groupID,
		MemberID: memberID,
		secret:   secret,
		groupKey: gm.groupKey,
	}, nil
}

// Revoke expels a member; its future signatures open to a revoked
// identity and Verify rejects them once the verifier holds the updated
// revocation state (modeled by asking the manager).
func (gm *GroupManager) Revoke(memberID string) {
	gm.revoked[memberID] = struct{}{}
}

// IsRevoked reports whether the member is revoked.
func (gm *GroupManager) IsRevoked(memberID string) bool {
	_, ok := gm.revoked[memberID]
	return ok
}

// Sign produces a group signature over msg with the given nonce. Nonces
// must not repeat per member (the caller uses a counter or timestamp);
// distinct nonces make tags unlinkable to outsiders.
func (c *GroupCred) Sign(msg []byte, nonce uint64) GroupSig {
	mac := hmac.New(sha256.New, c.secret)
	mac.Write(uint64Bytes(nonce))
	var tag [32]byte
	copy(tag[:], mac.Sum(nil))
	signed := Digest(msg, []byte(c.GroupID), uint64Bytes(nonce), tag[:])
	return GroupSig{
		GroupID: c.GroupID,
		Nonce:   nonce,
		Tag:     tag,
		Sig:     c.groupKey.Sign(signed[:]),
	}
}

// VerifyGroupSig checks a group signature against the group public key.
// It does not identify the signer.
func VerifyGroupSig(groupPub []byte, msg []byte, sig GroupSig) bool {
	signed := Digest(msg, []byte(sig.GroupID), uint64Bytes(sig.Nonce), sig.Tag[:])
	return Verify(groupPub, signed[:], sig.Sig)
}

// Open identifies the member that produced sig, or "" when no enrolled
// member matches (forged or foreign signature). Only the manager can do
// this — the "conditional privacy" property.
func (gm *GroupManager) Open(sig GroupSig) string {
	for id, secret := range gm.members {
		mac := hmac.New(sha256.New, secret)
		mac.Write(uint64Bytes(sig.Nonce))
		if hmac.Equal(mac.Sum(nil), sig.Tag[:]) {
			return id
		}
	}
	return ""
}

// CheckNotRevoked opens the signature and reports whether the signer is
// an enrolled, non-revoked member.
func (gm *GroupManager) CheckNotRevoked(sig GroupSig) bool {
	id := gm.Open(sig)
	if id == "" {
		return false
	}
	return !gm.IsRevoked(id)
}
