// Package cryptoprim provides the cryptographic building blocks the
// vehicular-cloud security protocols are assembled from: ed25519 key
// pairs, certificates with a CA hierarchy, certificate revocation lists
// (linear and bloom-accelerated — an E5 ablation), pseudonym pools, a
// simulation-faithful group-signature construction, and hash-chain
// one-time identities.
//
// Substitution note (see DESIGN.md): the VANET literature uses
// bilinear-pairing group signatures and ECDSA-p256 certificates on
// tamper-proof hardware. This package preserves the *protocol structure*
// — who signs what, who can verify, who can trace, how revocation is
// checked and how its cost scales — using stdlib primitives. Absolute
// CPU costs are modeled separately as virtual time in internal/auth.
package cryptoprim

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
)

// KeyPair is an ed25519 signing key pair.
type KeyPair struct {
	Public  ed25519.PublicKey
	private ed25519.PrivateKey
}

// GenerateKey creates a key pair from the given randomness source. Pass a
// deterministic reader in simulations for reproducible runs.
func GenerateKey(rand io.Reader) (KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand)
	if err != nil {
		return KeyPair{}, fmt.Errorf("cryptoprim: generating key: %w", err)
	}
	return KeyPair{Public: pub, private: priv}, nil
}

// CanSign reports whether the pair holds the private half.
func (k KeyPair) CanSign() bool { return len(k.private) == ed25519.PrivateKeySize }

// Sign signs msg. It panics if the key pair has no private half; use
// CanSign to check first when the key may be public-only.
func (k KeyPair) Sign(msg []byte) []byte {
	return ed25519.Sign(k.private, msg)
}

// Verify reports whether sig is a valid signature of msg under pub.
func Verify(pub ed25519.PublicKey, msg, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize || len(sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(pub, msg, sig)
}

// Digest returns the SHA-256 hash of the concatenated byte slices.
func Digest(parts ...[]byte) [32]byte {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// uint64Bytes encodes v big-endian.
func uint64Bytes(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}
