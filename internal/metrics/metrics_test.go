package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(5)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 6 {
		t.Errorf("Value = %d, want 6", got)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(1, 4); got != 0.25 {
		t.Errorf("Ratio = %v", got)
	}
	if got := Ratio(1, 0); got != 0 {
		t.Errorf("Ratio with zero total = %v, want 0", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Percentile(50) != 0 || h.Min() != 0 || h.Max() != 0 || h.Stddev() != 0 {
		t.Error("empty histogram should return zeros")
	}
	if h.Count() != 0 {
		t.Error("empty Count")
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []float64{5, 1, 3, 2, 4} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 3 {
		t.Errorf("Mean = %v, want 3", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if got := h.Percentile(50); got != 3 {
		t.Errorf("P50 = %v, want 3", got)
	}
	if got := h.Percentile(0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := h.Percentile(100); got != 5 {
		t.Errorf("P100 = %v, want 5", got)
	}
	// P25 of [1..5] with linear interpolation: rank 1.0 -> 2.
	if got := h.Percentile(25); got != 2 {
		t.Errorf("P25 = %v, want 2", got)
	}
	want := math.Sqrt(2) // population stddev of 1..5
	if got := h.Stddev(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Stddev = %v, want %v", got, want)
	}
}

func TestHistogramInterpolation(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(10)
	if got := h.Percentile(50); got != 5 {
		t.Errorf("P50 of {0,10} = %v, want 5", got)
	}
	if got := h.Percentile(75); got != 7.5 {
		t.Errorf("P75 of {0,10} = %v, want 7.5", got)
	}
}

func TestHistogramObserveAfterPercentile(t *testing.T) {
	// Observing after a percentile query must re-sort.
	var h Histogram
	h.Observe(10)
	_ = h.Percentile(50)
	h.Observe(1)
	if got := h.Min(); got != 1 {
		t.Errorf("Min after late observe = %v, want 1", got)
	}
}

func TestHistogramNaNDropped(t *testing.T) {
	var h Histogram
	h.Observe(math.NaN())
	h.Observe(1)
	if h.Count() != 1 {
		t.Errorf("Count = %d, want 1 (NaN dropped)", h.Count())
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(5)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("Reset did not clear")
	}
	h.Observe(2)
	if h.Mean() != 2 {
		t.Errorf("Mean after reset+observe = %v", h.Mean())
	}
}

func TestObserveDuration(t *testing.T) {
	var h Histogram
	h.ObserveDuration(1500 * time.Microsecond)
	if got := h.Mean(); got != 1.5 {
		t.Errorf("duration sample = %v ms, want 1.5", got)
	}
}

func TestPercentileMonotonicProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		var h Histogram
		for _, v := range raw {
			if !math.IsInf(v, 0) {
				h.Observe(math.Mod(v, 1e6))
			}
		}
		pa := math.Abs(math.Mod(a, 100))
		pb := math.Abs(math.Mod(b, 100))
		if pa > pb {
			pa, pb = pb, pa
		}
		return h.Percentile(pa) <= h.Percentile(pb)+1e-9
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPercentileMatchesSortedIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var h Histogram
	vals := make([]float64, 1001)
	for i := range vals {
		vals[i] = rng.Float64() * 1000
		h.Observe(vals[i])
	}
	sort.Float64s(vals)
	// With 1001 samples, P50 rank = 500 exactly.
	if got := h.Percentile(50); got != vals[500] {
		t.Errorf("P50 = %v, want %v", got, vals[500])
	}
}

func TestSummary(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Summarize()
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("Summary = %+v", s)
	}
	if !strings.Contains(s.String(), "n=100") {
		t.Errorf("Summary.String() = %q", s.String())
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("E0: demo", "proto", "delivery", "delay")
	tb.AddRow("mozo", "98.1%", "12.3ms")
	tb.AddRowf("greedy", 0.5, 42)
	out := tb.String()
	if !strings.Contains(out, "E0: demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "mozo") || !strings.Contains(out, "greedy") {
		t.Error("missing rows")
	}
	if !strings.Contains(out, "0.50") {
		t.Error("float cell not formatted with 2 decimals")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("line count = %d, want 5\n%s", len(lines), out)
	}
}

func TestTableRowWidthMismatch(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("1", "2", "3") // extra dropped
	tb.AddRow("only")        // missing rendered empty
	out := tb.String()
	if strings.Contains(out, "3") {
		t.Error("extra cell should be dropped")
	}
}

func TestPctMs(t *testing.T) {
	if got := Pct(0.123); got != "12.3%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Ms(1.234); got != "1.23ms" {
		t.Errorf("Ms = %q", got)
	}
}
