package metrics

import (
	"fmt"
	"strings"
)

// Table renders experiment results as an aligned plain-text table, the
// output format used by cmd/vcloudbench and EXPERIMENTS.md.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row. Cells beyond the header count are dropped; missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.headers) {
		cells = cells[:len(t.headers)]
	}
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row formatting each value with %v, floats with %.2f
// and percentages via the Pct helper.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.2f", v))
		case string:
			row = append(row, v)
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// Pct formats a fraction in [0,1] as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// Ms formats a millisecond value.
func Ms(f float64) string { return fmt.Sprintf("%.2fms", f) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
