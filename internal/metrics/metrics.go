// Package metrics provides the measurement primitives the experiment
// harness uses: counters, streaming histograms with percentile queries,
// rate meters over virtual time, and a plain-text table renderer that
// produces the paper-style rows in EXPERIMENTS.md.
//
// Everything here is deliberately simple and allocation-conscious; the
// simulator records millions of samples per run.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Counter is a monotonically increasing count.
type Counter struct {
	n uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta; negative deltas are ignored (counters are monotonic).
func (c *Counter) Add(delta int) {
	if delta > 0 {
		c.n += uint64(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Ratio returns c / total as a float, or 0 when total is zero.
func Ratio(c, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(c) / float64(total)
}

// Histogram collects float64 samples and answers mean / percentile
// queries. Samples are kept exactly (the simulator's sample counts are
// modest, and exactness makes tests deterministic); Reset reuses the
// backing array.
type Histogram struct {
	samples []float64
	sorted  bool
	sum     float64
}

// Observe records a sample. NaN samples are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.samples = append(h.samples, v)
	h.sum += v
	h.sorted = false
}

// ObserveDuration records a duration sample in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSorted()
	return h.samples[0]
}

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSorted()
	return h.samples[len(h.samples)-1]
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks. With no samples it returns 0.
func (h *Histogram) Percentile(p float64) float64 {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	h.ensureSorted()
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return h.samples[lo]
	}
	frac := rank - float64(lo)
	return h.samples[lo]*(1-frac) + h.samples[hi]*frac
}

// Stddev returns the population standard deviation, or 0 with fewer than
// two samples.
func (h *Histogram) Stddev() float64 {
	n := len(h.samples)
	if n < 2 {
		return 0
	}
	mean := h.Mean()
	var ss float64
	for _, v := range h.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Reset discards all samples but keeps capacity.
func (h *Histogram) Reset() {
	h.samples = h.samples[:0]
	h.sum = 0
	h.sorted = false
}

func (h *Histogram) ensureSorted() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Summary is a point-in-time digest of a histogram, convenient for
// experiment reports.
type Summary struct {
	Count          int
	Mean, P50, P95 float64
	P99, Min, Max  float64
}

// Summarize returns the digest of h.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P95:   h.Percentile(95),
		P99:   h.Percentile(99),
		Min:   h.Min(),
		Max:   h.Max(),
	}
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p95=%.2f p99=%.2f", s.Count, s.Mean, s.P50, s.P95, s.P99)
}
