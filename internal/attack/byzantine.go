package attack

import (
	"fmt"
	"math/rand"

	"vcloud/internal/vcloud"
)

// ByzantineWorker turns a cloud member into the §III "malicious member"
// the dependable-execution layer defends against: it executes assigned
// tasks normally but returns a wrong result value — silently (every
// result) or intermittently (each result wrong with probability
// WrongProb, drawn from a seeded stream so runs reproduce).
//
// The model is non-colluding: each worker's wrong value is a
// deterministic scramble of the correct value keyed by (worker, task),
// so two Byzantine workers never agree with each other or with the
// honest majority. This is the classical adversary redundant execution
// with majority voting is designed for; colluding adversaries that
// coordinate on a single wrong value would additionally require
// replica counts of 2f+1 with f colluders, which E12's no-quorum and
// trust metrics expose but the voting layer does not otherwise defend
// against.
type ByzantineWorker struct {
	member    *vcloud.Member
	wrongProb float64
	rng       *rand.Rand
	active    bool
	// Wrong counts results tampered with; Honest counts results passed
	// through (inactive periods and intermittent honesty).
	Wrong  uint64
	Honest uint64
}

// Byzantify installs Byzantine result-tampering on a member. wrongProb
// is the per-result probability of lying in [0,1] (1 = every result
// wrong); rng must be a seeded stream (e.g. Kernel.NewStream) and may be
// nil when wrongProb is 1. The worker starts active.
func Byzantify(m *vcloud.Member, wrongProb float64, rng *rand.Rand) (*ByzantineWorker, error) {
	if m == nil {
		return nil, fmt.Errorf("attack: member must not be nil")
	}
	if wrongProb < 0 || wrongProb > 1 {
		return nil, fmt.Errorf("attack: wrong probability must be in [0,1], got %v", wrongProb)
	}
	if wrongProb < 1 && rng == nil {
		return nil, fmt.Errorf("attack: intermittent byzantine worker needs a seeded rng")
	}
	b := &ByzantineWorker{member: m, wrongProb: wrongProb, rng: rng, active: true}
	m.SetResultTamper(b.tamper)
	return b, nil
}

// SetActive flips the worker between Byzantine and honest behaviour
// (the chaos soak's "byzantine flip" fault).
func (b *ByzantineWorker) SetActive(on bool) { b.active = on }

// Active reports whether the worker is currently lying.
func (b *ByzantineWorker) Active() bool { return b.active }

func (b *ByzantineWorker) tamper(t vcloud.Task, correct uint64) uint64 {
	if !b.active || (b.wrongProb < 1 && b.rng.Float64() >= b.wrongProb) {
		b.Honest++
		return correct
	}
	b.Wrong++
	return scramble(uint64(b.member.Addr()), uint64(t.ID)) ^ correct
}

// scramble mixes (worker, task) into a non-zero perturbation, splitmix-
// style, so every Byzantine worker produces a distinct wrong value per
// task and never accidentally the correct one.
func scramble(worker, task uint64) uint64 {
	z := worker*0x9e3779b97f4a7c15 + task + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return z | 1 // never zero: wrong value always differs from correct
}
