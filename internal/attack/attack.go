// Package attack implements the adversary models of the paper's §III
// threat list, as live agents injected into a running scenario:
//
//   - Eavesdropper: promiscuous radio capture, plus the movement-
//     tracking analysis (§III "privacy breach: tracking movements of
//     vehicles") that links rotating pseudonyms via position continuity;
//   - Replayer: captures frames and re-transmits them later (replay
//     attack);
//   - Impersonator: crafts messages claiming a victim's origin address;
//   - Flooder: denial-of-service channel saturation;
//   - Suppressor: a malicious relay that silently drops or delays the
//     messages it should forward (message delay/suppression attack);
//   - Sybil: one physical attacker operating many fabricated identities
//     (the false-data amplification E9/E10 measure);
//   - FalseReporter: injects fabricated event reports (data
//     "disruption").
//
// Experiment E10 wires these against the corresponding defenses and
// reports detection/prevention rates.
package attack

import (
	"fmt"
	"math"
	"sort"
	"time"

	"vcloud/internal/geo"
	"vcloud/internal/radio"
	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

// Eavesdropper passively captures everything in radio range from a fixed
// position and runs tracking analysis over captured beacons.
type Eavesdropper struct {
	medium *radio.Medium
	addr   radio.NodeID
	// Captured counts frames overheard, by message kind (beacons are
	// "beacon").
	Captured map[string]uint64
	// observations records (time, position, identity-ish) for tracking.
	observations []observation
}

type observation struct {
	at   sim.Time
	pos  geo.Point
	from radio.NodeID
}

// NewEavesdropper plants a listener at pos. addr must be unused by any
// legitimate node.
func NewEavesdropper(medium *radio.Medium, addr radio.NodeID, pos geo.Point) (*Eavesdropper, error) {
	if medium == nil {
		return nil, fmt.Errorf("attack: medium must not be nil")
	}
	e := &Eavesdropper{
		medium:   medium,
		addr:     addr,
		Captured: make(map[string]uint64),
	}
	medium.UpdatePosition(addr, pos)
	medium.SetPromiscuous(addr, e.onFrame)
	return e, nil
}

// Stop removes the listener.
func (e *Eavesdropper) Stop() {
	e.medium.SetPromiscuous(e.addr, nil)
	e.medium.Unregister(e.addr)
}

func (e *Eavesdropper) onFrame(f radio.Frame) {
	switch p := f.Payload.(type) {
	case vnet.Beacon:
		e.Captured["beacon"]++
		e.observations = append(e.observations, observation{at: f.SentAt, pos: p.Pos, from: f.From})
	case vnet.Message:
		e.Captured[p.Kind]++
	default:
		e.Captured["other"]++
	}
}

// TotalCaptured returns the total overheard frame count.
func (e *Eavesdropper) TotalCaptured() uint64 {
	var total uint64
	for _, v := range e.Captured {
		total += v
	}
	return total
}

// TrackingAccuracy measures how well position-continuity linking works
// against the captured beacon stream: consecutive observations are
// linked when they are within maxStep meters and maxGap time; the
// returned fraction is the share of links whose true source matches —
// i.e. how trackable vehicles are despite pseudonym-fresh addresses. A
// privacy-preserving beaconing scheme drives this toward the random
// baseline; plaintext positional beacons make it near 1.
func (e *Eavesdropper) TrackingAccuracy(maxStep float64, maxGap sim.Time) (float64, int) {
	obs := append([]observation(nil), e.observations...)
	sort.Slice(obs, func(i, j int) bool { return obs[i].at < obs[j].at })
	links, correct := 0, 0
	for i := 1; i < len(obs); i++ {
		// Link obs[i] to the nearest prior observation within the window.
		best := -1
		bestD := maxStep
		for j := i - 1; j >= 0; j-- {
			if obs[i].at-obs[j].at > maxGap {
				break
			}
			d := obs[i].pos.Dist(obs[j].pos)
			if d < bestD {
				best, bestD = j, d
			}
		}
		if best < 0 {
			continue
		}
		links++
		if obs[best].from == obs[i].from {
			correct++
		}
	}
	if links == 0 {
		return 0, 0
	}
	return float64(correct) / float64(links), links
}

// Replayer captures frames promiscuously and can re-transmit the last
// captured message of a given kind from its own radio.
type Replayer struct {
	medium   *radio.Medium
	addr     radio.NodeID
	captured map[string]vnet.Message
	Replayed uint64
}

// NewReplayer plants a replay attacker at pos.
func NewReplayer(medium *radio.Medium, addr radio.NodeID, pos geo.Point) (*Replayer, error) {
	if medium == nil {
		return nil, fmt.Errorf("attack: medium must not be nil")
	}
	r := &Replayer{medium: medium, addr: addr, captured: make(map[string]vnet.Message)}
	medium.UpdatePosition(addr, pos)
	medium.SetPromiscuous(addr, func(f radio.Frame) {
		if m, ok := f.Payload.(vnet.Message); ok {
			r.captured[m.Kind] = m
		}
	})
	return r, nil
}

// Stop removes the attacker.
func (r *Replayer) Stop() {
	r.medium.SetPromiscuous(r.addr, nil)
	r.medium.Unregister(r.addr)
}

// Has reports whether a message of the kind has been captured.
func (r *Replayer) Has(kind string) bool {
	_, ok := r.captured[kind]
	return ok
}

// Replay re-transmits the captured message of the kind to the target (or
// broadcast). It reports whether anything was captured to replay.
func (r *Replayer) Replay(kind string, to vnet.Addr) bool {
	m, ok := r.captured[kind]
	if !ok {
		return false
	}
	r.Replayed++
	r.medium.Send(r.addr, to, m.Size, m)
	return true
}

// Impersonator sends protocol messages with a forged origin.
type Impersonator struct {
	medium *radio.Medium
	addr   radio.NodeID
	Sent   uint64
}

// NewImpersonator plants an impersonation attacker at pos.
func NewImpersonator(medium *radio.Medium, addr radio.NodeID, pos geo.Point) (*Impersonator, error) {
	if medium == nil {
		return nil, fmt.Errorf("attack: medium must not be nil")
	}
	medium.UpdatePosition(addr, pos)
	return &Impersonator{medium: medium, addr: addr}, nil
}

// SendAs transmits a message whose Origin claims to be victim.
func (i *Impersonator) SendAs(victim, to vnet.Addr, kind string, size int, payload any) {
	i.Sent++
	msg := vnet.Message{
		Origin:  victim,
		Seq:     uint32(0xFFFF0000) + uint32(i.Sent),
		Dest:    to,
		Kind:    kind,
		TTL:     1,
		Size:    size,
		Payload: payload,
	}
	i.medium.Send(i.addr, to, size, msg)
}

// Flooder saturates the channel with junk traffic (DoS).
type Flooder struct {
	medium  *radio.Medium
	kernel  *sim.Kernel
	addr    radio.NodeID
	ticker  *sim.Ticker
	Sent    uint64
	stopped bool
}

// NewFlooder plants a DoS attacker at pos sending frameSize junk frames
// at the given rate (frames/second).
func NewFlooder(kernel *sim.Kernel, medium *radio.Medium, addr radio.NodeID, pos geo.Point, rate float64, frameSize int) (*Flooder, error) {
	if medium == nil || kernel == nil {
		return nil, fmt.Errorf("attack: kernel and medium must not be nil")
	}
	if rate <= 0 {
		return nil, fmt.Errorf("attack: flood rate must be positive, got %v", rate)
	}
	medium.UpdatePosition(addr, pos)
	f := &Flooder{medium: medium, kernel: kernel, addr: addr}
	period := sim.Time(float64(time.Second) / rate)
	if period <= 0 {
		period = 1
	}
	t, err := kernel.Every(period, func() {
		if f.stopped {
			return
		}
		f.Sent++
		medium.Send(addr, radio.Broadcast, frameSize, junkPayload{})
	})
	if err != nil {
		return nil, err
	}
	f.ticker = t
	return f, nil
}

type junkPayload struct{}

// Stop halts the flood.
func (f *Flooder) Stop() {
	if f.stopped {
		return
	}
	f.stopped = true
	f.ticker.Stop()
	f.medium.Unregister(f.addr)
}

// Suppressor wraps a message handler chain: installed on a compromised
// relay node, it drops a fraction of messages of the given kind and
// delays the rest.
type Suppressor struct {
	node     *vnet.Node
	kind     string
	dropProb float64
	delay    sim.Time
	inner    vnet.Handler
	rng      func() float64
	Dropped  uint64
	Delayed  uint64
}

// InstallSuppressor interposes on node's handler for kind. dropProb in
// [0,1]; delay applies to messages that survive. The original handler
// must already be registered.
func InstallSuppressor(node *vnet.Node, kind string, inner vnet.Handler, dropProb float64, delay sim.Time, rng func() float64) (*Suppressor, error) {
	if node == nil || inner == nil {
		return nil, fmt.Errorf("attack: node and inner handler must not be nil")
	}
	if dropProb < 0 || dropProb > 1 {
		return nil, fmt.Errorf("attack: drop probability must be in [0,1], got %v", dropProb)
	}
	if rng == nil {
		return nil, fmt.Errorf("attack: rng must not be nil")
	}
	s := &Suppressor{node: node, kind: kind, dropProb: dropProb, delay: delay, inner: inner, rng: rng}
	node.Handle(kind, s.handle)
	return s, nil
}

func (s *Suppressor) handle(msg vnet.Message, relayer vnet.Addr) {
	if s.rng() < s.dropProb {
		s.Dropped++
		return
	}
	if s.delay > 0 {
		s.Delayed++
		s.node.Kernel().After(s.delay, func() { s.inner(msg, relayer) })
		return
	}
	s.inner(msg, relayer)
}

// Sybil is one physical transmitter operating many fabricated
// identities from (approximately) one position.
type Sybil struct {
	medium *radio.Medium
	ids    []radio.NodeID
}

// NewSybil fabricates n identities at positions jittered around pos.
func NewSybil(medium *radio.Medium, baseAddr radio.NodeID, n int, pos geo.Point, jitter float64) (*Sybil, error) {
	if medium == nil {
		return nil, fmt.Errorf("attack: medium must not be nil")
	}
	if n < 1 {
		return nil, fmt.Errorf("attack: sybil needs at least one identity, got %d", n)
	}
	s := &Sybil{medium: medium}
	for i := 0; i < n; i++ {
		id := baseAddr + radio.NodeID(i)
		ang := float64(i) * 2 * math.Pi / float64(n)
		p := geo.Point{X: pos.X + jitter*math.Cos(ang), Y: pos.Y + jitter*math.Sin(ang)}
		medium.UpdatePosition(id, p)
		s.ids = append(s.ids, id)
	}
	return s, nil
}

// IDs returns the fabricated identities.
func (s *Sybil) IDs() []radio.NodeID {
	return append([]radio.NodeID(nil), s.ids...)
}

// BroadcastAll sends the same payload once per fabricated identity —
// fake consensus amplification.
func (s *Sybil) BroadcastAll(kind string, size int, mkPayload func(id radio.NodeID) any) {
	for _, id := range s.ids {
		msg := vnet.Message{
			Origin: vnet.Addr(id), Seq: 1, Dest: vnet.BroadcastAddr,
			Kind: kind, TTL: 1, Size: size, Payload: mkPayload(id),
		}
		s.medium.Send(id, radio.Broadcast, size, msg)
	}
}

// Stop removes all fabricated identities.
func (s *Sybil) Stop() {
	for _, id := range s.ids {
		s.medium.Unregister(id)
	}
}
