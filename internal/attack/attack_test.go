package attack_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"vcloud/internal/attack"
	"vcloud/internal/auth"
	"vcloud/internal/cryptoprim"
	"vcloud/internal/geo"
	"vcloud/internal/pki"
	"vcloud/internal/radio"
	"vcloud/internal/roadnet"
	"vcloud/internal/scenario"
	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

const attackerBase = radio.NodeID(1 << 24)

func highway(t testing.TB, seed int64, vehicles int) *scenario.Scenario {
	t.Helper()
	net, err := roadnet.Highway(roadnet.HighwaySpec{LengthM: 2000, Segments: 2, SpeedLimit: 25, Lanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := scenario.New(scenario.Spec{Seed: seed, Network: net, NumVehicles: vehicles})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEavesdropperCapturesBeacons(t *testing.T) {
	s := highway(t, 1, 15)
	spy, err := attack.NewEavesdropper(s.Medium, attackerBase, geo.Point{X: 1000, Y: 15})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if spy.Captured["beacon"] == 0 {
		t.Fatal("eavesdropper heard no beacons")
	}
	// Tracking: plaintext positional beacons make vehicles highly
	// trackable — the §III privacy-breach threat.
	acc, links := spy.TrackingAccuracy(30, 2*time.Second)
	if links == 0 {
		t.Fatal("no tracking links formed")
	}
	if acc < 0.5 {
		t.Errorf("tracking accuracy %v suspiciously low for plaintext beacons", acc)
	}
	spy.Stop()
	// Flush frames that were already in flight at the stop instant.
	if err := s.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	before := spy.TotalCaptured()
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if spy.TotalCaptured() != before {
		t.Error("stopped eavesdropper kept capturing")
	}
}

func TestEavesdropperOverhearsUnicast(t *testing.T) {
	k := sim.NewKernel(1)
	bounds := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 1000, Y: 1000})
	m, err := radio.NewMedium(k, bounds, radio.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	mkNode := func(addr vnet.Addr, pos geo.Point) *vnet.Node {
		m.UpdatePosition(addr, pos)
		n, err := vnet.NewNode(k, m, addr, vnet.Config{}, func() (geo.Point, float64, float64) { return pos, 0, 0 })
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	a := mkNode(1, geo.Point{X: 100, Y: 100})
	b := mkNode(2, geo.Point{X: 200, Y: 100})
	_ = b
	spy, err := attack.NewEavesdropper(m, attackerBase, geo.Point{X: 150, Y: 120})
	if err != nil {
		t.Fatal(err)
	}
	a.SendTo(2, a.NewMessage(2, "secret-kind", 100, 1, "confidential"))
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if spy.Captured["secret-kind"] != 1 {
		t.Errorf("unicast not overheard: %v", spy.Captured)
	}
}

// authRig builds two authenticated nodes plus shared TA for replay /
// impersonation tests.
type authRig struct {
	k     *sim.Kernel
	m     *radio.Medium
	ta    *pki.TA
	nodes []*vnet.Node
	met   *auth.Metrics
	auths []*auth.Authenticator
}

func newAuthRig(t testing.TB, scheme auth.Scheme) *authRig {
	t.Helper()
	k := sim.NewKernel(2)
	bounds := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 1000, Y: 1000})
	m, err := radio.NewMedium(k, bounds, radio.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ta, err := pki.New("TA", rand.New(rand.NewSource(7)), pki.Config{PoolSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	r := &authRig{k: k, m: m, ta: ta, met: &auth.Metrics{}}
	anchors := auth.Anchors{
		RootKey:  ta.RootKey(),
		GroupKey: ta.GroupKey(),
		CRL:      ta.CRL(),
		CRLMode:  auth.CRLLinear,
		GroupRevoked: func(sig cryptoprim.GroupSig) (bool, int) {
			return !ta.GroupManager().CheckNotRevoked(sig), 0
		},
	}
	for i := 0; i < 2; i++ {
		pos := geo.Point{X: 100 + float64(i)*100, Y: 100}
		addr := vnet.Addr(i)
		m.UpdatePosition(addr, pos)
		node, err := vnet.NewNode(k, m, addr, vnet.Config{}, func() (geo.Point, float64, float64) { return pos, 0, 0 })
		if err != nil {
			t.Fatal(err)
		}
		enr, err := ta.Enroll(pki.VehicleIdentity(fmt.Sprintf("v%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		au, err := auth.New(node, enr, anchors, scheme, auth.CostModel{}, r.met)
		if err != nil {
			t.Fatal(err)
		}
		r.nodes = append(r.nodes, node)
		r.auths = append(r.auths, au)
	}
	return r
}

func TestReplayedAuthRequestRejected(t *testing.T) {
	r := newAuthRig(t, auth.Pseudonym)
	rp, err := attack.NewReplayer(r.m, attackerBase, geo.Point{X: 150, Y: 120})
	if err != nil {
		t.Fatal(err)
	}
	// Legitimate handshake first, so the replayer captures an auth.req.
	okCount := 0
	if err := r.auths[0].Authenticate(1, func(res auth.Result) {
		if res.OK {
			okCount++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.k.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if okCount != 1 {
		t.Fatal("legitimate handshake failed; cannot test replay")
	}
	if !rp.Has("auth.req") {
		t.Fatal("replayer captured nothing")
	}
	failuresBefore := r.met.Failures.Value()
	successesBefore := r.met.Successes.Value()
	// Replay the captured request at node 1. The challenge binds the
	// initiator address and nonce, and the response goes to the original
	// origin — the attacker gains nothing. The responder may even accept
	// the stale request (it is cryptographically valid), but no session
	// results for the attacker and no success is recorded for it.
	if !rp.Replay("auth.req", 1) {
		t.Fatal("replay failed")
	}
	if err := r.k.Run(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	if r.met.Successes.Value() != successesBefore {
		t.Errorf("replay produced a new successful handshake: %d -> %d",
			successesBefore, r.met.Successes.Value())
	}
	_ = failuresBefore
	rp.Stop()
}

func TestImpersonatedAuthFails(t *testing.T) {
	r := newAuthRig(t, auth.Pseudonym)
	imp, err := attack.NewImpersonator(r.m, attackerBase, geo.Point{X: 150, Y: 120})
	if err != nil {
		t.Fatal(err)
	}
	// The impersonator claims to be node 0 but has no TA credentials: it
	// fabricates a self-signed proof, which the responder must reject.
	evil := rand.New(rand.NewSource(66))
	key, _ := cryptoprim.GenerateKey(evil)
	ca, _ := cryptoprim.NewCA("evil", evil)
	cert, _ := ca.Issue([]byte("fake"), key.Public, time.Hour)
	// Payload shape mirrors auth's wire message via the public surface:
	// we can't build auth's unexported types, so send garbage of the
	// right kind — the responder's type assertion drops it silently,
	// which is itself the defense-in-depth path.
	imp.SendAs(0, 1, "auth.req", 300, cert)
	if err := r.k.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if r.met.Successes.Value() != 0 {
		t.Error("impersonation produced a successful handshake")
	}
}

func TestFlooderDegradesDelivery(t *testing.T) {
	baseline := func(withFlood bool) float64 {
		s := highway(t, 9, 15)
		var fl *attack.Flooder
		if withFlood {
			var err error
			// 2000 × 1500 B frames/s ≈ 24 Mbps against a 6 Mbps channel.
			fl, err = attack.NewFlooder(s.Kernel, s.Medium, attackerBase, geo.Point{X: 1000, Y: 15}, 2000, 1500)
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		if err := s.RunFor(20 * time.Second); err != nil {
			t.Fatal(err)
		}
		if fl != nil {
			fl.Stop()
			if fl.Sent == 0 {
				t.Fatal("flooder sent nothing")
			}
		}
		st := s.Medium.Stats()
		return float64(st.Delivered) / float64(st.Delivered+st.LostLoad)
	}
	clean := baseline(false)
	flooded := baseline(true)
	t.Logf("delivery share: clean=%.3f flooded=%.3f", clean, flooded)
	if flooded >= clean {
		t.Errorf("DoS flood did not degrade delivery: clean=%.3f flooded=%.3f", clean, flooded)
	}
}

func TestSuppressorDropsAndDelays(t *testing.T) {
	k := sim.NewKernel(3)
	bounds := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 1000, Y: 1000})
	m, err := radio.NewMedium(k, bounds, radio.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	pos := geo.Point{X: 100, Y: 100}
	m.UpdatePosition(1, pos)
	m.UpdatePosition(2, geo.Point{X: 200, Y: 100})
	a, err := vnet.NewNode(k, m, 1, vnet.Config{}, func() (geo.Point, float64, float64) { return pos, 0, 0 })
	if err != nil {
		t.Fatal(err)
	}
	b, err := vnet.NewNode(k, m, 2, vnet.Config{}, func() (geo.Point, float64, float64) {
		return geo.Point{X: 200, Y: 100}, 0, 0
	})
	if err != nil {
		t.Fatal(err)
	}
	received := 0
	var lastAt sim.Time
	inner := func(msg vnet.Message, relayer vnet.Addr) { received++; lastAt = k.Now() }
	rng := rand.New(rand.NewSource(4))
	sup, err := attack.InstallSuppressor(b, "data", inner, 0.5, 100*time.Millisecond, rng.Float64)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		i := i
		k.At(sim.Time(i)*50*time.Millisecond, func() {
			a.SendTo(2, a.NewMessage(2, "data", 100, 1, i))
		})
	}
	if err := k.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if sup.Dropped == 0 {
		t.Error("suppressor dropped nothing")
	}
	if sup.Delayed == 0 {
		t.Error("suppressor delayed nothing")
	}
	if received == 0 || received == n {
		t.Errorf("received = %d, want partial delivery", received)
	}
	if lastAt == 0 {
		t.Error("no delivery timestamp")
	}
}

func TestSuppressorValidation(t *testing.T) {
	if _, err := attack.InstallSuppressor(nil, "k", func(vnet.Message, vnet.Addr) {}, 0.5, 0, rand.Float64); err == nil {
		t.Error("nil node")
	}
}

func TestSybilAmplification(t *testing.T) {
	s := highway(t, 11, 10)
	syb, err := attack.NewSybil(s.Medium, attackerBase, 8, geo.Point{X: 1000, Y: 15}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(syb.IDs()) != 8 {
		t.Fatalf("ids = %d", len(syb.IDs()))
	}
	// A victim listening for reports sees 8 "independent" senders.
	victim, ok := s.Node(s.VehicleIDs()[0])
	if !ok {
		t.Fatal("no victim node")
	}
	seen := map[vnet.Addr]bool{}
	victim.Handle("report", func(msg vnet.Message, _ vnet.Addr) { seen[msg.Origin] = true })
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	// Park the victim near the sybil cluster by sending repeatedly while
	// vehicles drive by; some broadcasts will land.
	for i := 0; i < 20; i++ {
		i := i
		s.Kernel.After(sim.Time(i)*time.Second, func() {
			syb.BroadcastAll("report", 100, func(id radio.NodeID) any { return "ice ahead" })
		})
	}
	if err := s.RunFor(25 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(seen) < 2 {
		t.Skipf("victim heard only %d sybil identities (mobility dependent)", len(seen))
	}
	if len(seen) > 8 {
		t.Errorf("more identities than fabricated: %d", len(seen))
	}
	syb.Stop()
	if _, err := attack.NewSybil(s.Medium, attackerBase, 0, geo.Point{}, 0); err == nil {
		t.Error("zero identities should error")
	}
}

func TestFlooderValidation(t *testing.T) {
	s := highway(t, 1, 1)
	if _, err := attack.NewFlooder(s.Kernel, s.Medium, attackerBase, geo.Point{}, 0, 100); err == nil {
		t.Error("zero rate should error")
	}
	if _, err := attack.NewFlooder(nil, s.Medium, attackerBase, geo.Point{}, 1, 100); err == nil {
		t.Error("nil kernel should error")
	}
}
