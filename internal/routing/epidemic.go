package routing

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

const (
	epidemicKind = "route.epidemic"
	epidemicTTL  = 16
	// epidemicLifetime bounds how long a copy is stored and re-offered
	// (the DTN buffer expiry).
	epidemicLifetime = 30 * time.Second
	// epidemicBuffer caps the per-node store.
	epidemicBuffer = 64
	// contactWindow: a beacon from a node not heard within this window
	// counts as a new contact and triggers a buffer exchange.
	contactWindow = 10 * time.Second
	// flushMinGap rate-limits buffer flushes.
	flushMinGap = time.Second
)

// Epidemic implements store–carry–forward epidemic routing: every node
// buffers the packets it hears and re-broadcasts its buffer whenever it
// meets a node it has not seen recently. Delivery approaches the upper
// bound of what any routing protocol could achieve; the cost — counted
// in Stats.Transmissions — is the point of the E4 comparison.
type Epidemic struct {
	common
	rng    *rand.Rand
	buffer map[bufferKey]bufferedMsg
	// contacts tracks when each neighbor was last heard, to detect new
	// encounters.
	contacts  map[vnet.Addr]sim.Time
	lastFlush sim.Time
	stopped   bool
}

type bufferKey struct {
	origin vnet.Addr
	seq    uint32
}

type bufferedMsg struct {
	msg     vnet.Message
	expires sim.Time
}

// NewEpidemic creates an epidemic router on node. The node must beacon
// (scenario default) for contact detection to trigger exchanges.
func NewEpidemic(node *vnet.Node, stats *Stats, deliver DeliverFunc) (*Epidemic, error) {
	c, err := newCommon(node, stats, deliver)
	if err != nil {
		return nil, err
	}
	e := &Epidemic{
		common:   c,
		rng:      node.Kernel().NewStream(fmt.Sprintf("epidemic-%d", node.Addr())),
		buffer:   make(map[bufferKey]bufferedMsg),
		contacts: make(map[vnet.Addr]sim.Time),
	}
	node.Handle(epidemicKind, e.onMessage)
	node.OnBeacon(e.onBeacon)
	return e, nil
}

// Name implements Router.
func (e *Epidemic) Name() string { return "epidemic" }

// Stop implements Router.
func (e *Epidemic) Stop() {
	if e.stopped {
		return
	}
	e.stopped = true
	e.node.Handle(epidemicKind, nil)
}

// BufferLen reports the number of stored copies.
func (e *Epidemic) BufferLen() int { return len(e.buffer) }

// Send implements Router.
func (e *Epidemic) Send(dest vnet.Addr, size int, data any) error {
	if e.stopped {
		return fmt.Errorf("routing: router stopped")
	}
	if dest == e.node.Addr() {
		return fmt.Errorf("routing: cannot send to self")
	}
	msg := e.node.NewMessage(dest, epidemicKind, size, epidemicTTL, Packet{Data: data})
	e.stats.Originated.Inc()
	e.node.Seen(msg)
	e.store(msg)
	e.transmit(msg, 0)
	return nil
}

func (e *Epidemic) store(msg vnet.Message) {
	if len(e.buffer) >= epidemicBuffer {
		// Evict the entry closest to expiry; break timestamp ties by key
		// so eviction never depends on map iteration order.
		var oldest bufferKey
		var oldestAt sim.Time = 1 << 62
		first := true
		for k, b := range e.buffer {
			switch {
			case first || b.expires < oldestAt:
				oldest, oldestAt, first = k, b.expires, false
			case b.expires == oldestAt:
				if k.origin < oldest.origin || (k.origin == oldest.origin && k.seq < oldest.seq) {
					oldest = k
				}
			}
		}
		delete(e.buffer, oldest)
	}
	e.buffer[bufferKey{msg.Origin, msg.Seq}] = bufferedMsg{
		msg:     msg,
		expires: e.node.Kernel().Now() + epidemicLifetime,
	}
}

// transmit broadcasts a copy after an optional desynchronization delay.
func (e *Epidemic) transmit(msg vnet.Message, delay sim.Time) {
	send := func() {
		if e.stopped {
			return
		}
		e.stats.Transmissions.Inc()
		e.node.BroadcastLocal(msg)
	}
	if delay == 0 {
		send()
		return
	}
	e.node.Kernel().After(delay, send)
}

func (e *Epidemic) onMessage(msg vnet.Message, _ vnet.Addr) {
	if e.stopped {
		return
	}
	if e.node.Seen(msg) {
		if msg.Dest == e.node.Addr() {
			e.stats.DupDelivered.Inc()
		}
		return
	}
	if msg.Dest == e.node.Addr() {
		e.arrived(msg, epidemicTTL-msg.TTL)
		return
	}
	msg.TTL--
	if msg.TTL <= 0 {
		e.stats.Dropped.Inc()
		return
	}
	e.store(msg)
	// Immediate forward wave with a randomized delay that desynchronizes
	// simultaneous rebroadcasts.
	e.transmit(msg, sim.Time(e.rng.Int63n(int64(20*time.Millisecond))))
}

// onBeacon detects new contacts and re-offers the buffer — the
// store–carry–forward exchange that bridges network partitions.
func (e *Epidemic) onBeacon(b vnet.Beacon) {
	if e.stopped {
		return
	}
	now := e.node.Kernel().Now()
	last, known := e.contacts[b.From]
	e.contacts[b.From] = now
	if known && now-last < contactWindow {
		return // ongoing contact, not a new encounter
	}
	if now-e.lastFlush < flushMinGap {
		return
	}
	e.lastFlush = now
	// Drop expired copies, re-offer the rest in canonical order (map
	// iteration must not leak into transmission order).
	keys := make([]bufferKey, 0, len(e.buffer))
	for k, buf := range e.buffer {
		if now > buf.expires {
			delete(e.buffer, k)
			continue
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].origin != keys[j].origin {
			return keys[i].origin < keys[j].origin
		}
		return keys[i].seq < keys[j].seq
	})
	for i, k := range keys {
		e.transmit(e.buffer[k].msg, sim.Time(e.rng.Int63n(int64(50*time.Millisecond)))+sim.Time(i)*time.Millisecond)
	}
}

var _ Router = (*Epidemic)(nil)
