package routing_test

import (
	"fmt"
	"testing"
	"time"

	"vcloud/internal/cluster"
	"vcloud/internal/geo"
	"vcloud/internal/mobility"
	"vcloud/internal/radio"
	"vcloud/internal/roadnet"
	"vcloud/internal/routing"
	"vcloud/internal/scenario"
	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

// staticChain builds a line of stationary nodes spaced apart, returning
// the scenario-free primitives needed by focused tests.
type chainRig struct {
	k     *sim.Kernel
	m     *radio.Medium
	nodes []*vnet.Node
}

func newChain(t testing.TB, n int, spacing float64) *chainRig {
	t.Helper()
	k := sim.NewKernel(1)
	bounds := geo.NewRect(geo.Point{X: -100, Y: -100}, geo.Point{X: spacing*float64(n) + 100, Y: 100})
	m, err := radio.NewMedium(k, bounds, radio.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	r := &chainRig{k: k, m: m}
	for i := 0; i < n; i++ {
		pos := geo.Point{X: float64(i) * spacing, Y: 0}
		m.UpdatePosition(vnet.Addr(i), pos)
		node, err := vnet.NewNode(k, m, vnet.Addr(i), vnet.Config{BeaconPeriod: 200 * time.Millisecond},
			func() (geo.Point, float64, float64) { return pos, 0, 0 })
		if err != nil {
			t.Fatal(err)
		}
		r.nodes = append(r.nodes, node)
		if err := node.Start(); err != nil {
			t.Fatal(err)
		}
	}
	// Let beacons populate neighbor tables.
	if err := k.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	return r
}

func oracle(m *radio.Medium) routing.LocService {
	return routing.OracleLoc{Positions: m}
}

func TestGreedyMultiHopDelivery(t *testing.T) {
	r := newChain(t, 6, 140) // 6 nodes, 140 m apart: 5 hops end to end
	var stats routing.Stats
	var gotData any
	var gotHops int
	routers := make([]*routing.Greedy, len(r.nodes))
	for i, n := range r.nodes {
		var err error
		routers[i], err = routing.NewGreedy(n, &stats, routing.GeoConfig{Loc: oracle(r.m)}, func(from vnet.Addr, data any, lat sim.Time, hops int) {
			gotData, gotHops = data, hops
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := routers[0].Send(vnet.Addr(5), 500, "payload"); err != nil {
		t.Fatal(err)
	}
	if err := r.k.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if gotData != "payload" {
		t.Fatalf("payload not delivered, stats: delivered=%d dropped=%d",
			stats.Delivered.Value(), stats.Dropped.Value())
	}
	if gotHops < 3 {
		t.Errorf("hops = %d, want multi-hop path", gotHops)
	}
	if stats.DeliveryRatio() != 1 {
		t.Errorf("delivery ratio = %v", stats.DeliveryRatio())
	}
	if stats.Latency.Count() != 1 {
		t.Errorf("latency samples = %d", stats.Latency.Count())
	}
}

func TestGreedySendValidation(t *testing.T) {
	r := newChain(t, 2, 100)
	var stats routing.Stats
	g, err := routing.NewGreedy(r.nodes[0], &stats, routing.GeoConfig{Loc: oracle(r.m)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Send(r.nodes[0].Addr(), 100, nil); err == nil {
		t.Error("send to self should error")
	}
	if err := g.Send(vnet.Addr(999), 100, nil); err == nil {
		t.Error("unknown destination should error")
	}
	g.Stop()
	if err := g.Send(vnet.Addr(1), 100, nil); err == nil {
		t.Error("send after stop should error")
	}
	g.Stop() // double stop safe
}

func TestGreedyConstructorValidation(t *testing.T) {
	r := newChain(t, 1, 100)
	var stats routing.Stats
	if _, err := routing.NewGreedy(nil, &stats, routing.GeoConfig{Loc: oracle(r.m)}, nil); err == nil {
		t.Error("nil node should error")
	}
	if _, err := routing.NewGreedy(r.nodes[0], nil, routing.GeoConfig{Loc: oracle(r.m)}, nil); err == nil {
		t.Error("nil stats should error")
	}
	if _, err := routing.NewGreedy(r.nodes[0], &stats, routing.GeoConfig{}, nil); err == nil {
		t.Error("nil loc service should error")
	}
	if _, err := routing.NewMoZo(r.nodes[0], &stats, routing.GeoConfig{Loc: oracle(r.m)}, nil, nil); err == nil {
		t.Error("MoZo without cluster state should error")
	}
}

func TestGreedyCarryBufferDropsOnTimeout(t *testing.T) {
	// Two nodes far apart: no route at all; the packet must wait in the
	// carry buffer and eventually drop.
	k := sim.NewKernel(1)
	bounds := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 5000, Y: 5000})
	m, err := radio.NewMedium(k, bounds, radio.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	posA := geo.Point{X: 0, Y: 0}
	m.UpdatePosition(1, posA)
	m.UpdatePosition(2, geo.Point{X: 4000, Y: 4000})
	a, err := vnet.NewNode(k, m, 1, vnet.Config{}, func() (geo.Point, float64, float64) { return posA, 0, 0 })
	if err != nil {
		t.Fatal(err)
	}
	var stats routing.Stats
	g, err := routing.NewGreedy(a, &stats, routing.GeoConfig{Loc: oracle(m), CarryTimeout: 2 * time.Second}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Send(2, 100, nil); err != nil {
		t.Fatal(err)
	}
	if g.BufferLen() != 1 {
		t.Fatalf("buffer len = %d, want 1", g.BufferLen())
	}
	if err := k.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if g.BufferLen() != 0 {
		t.Error("buffer not drained after timeout")
	}
	if stats.Dropped.Value() != 1 {
		t.Errorf("dropped = %d, want 1", stats.Dropped.Value())
	}
	if stats.Delivered.Value() != 0 {
		t.Error("impossible delivery")
	}
}

func TestAODVDiscoversAndDelivers(t *testing.T) {
	// Send from node 0 to node 4 (4 hops): requires RREQ flood + RREP.
	r2 := newChain(t, 5, 140)
	var st2 routing.Stats
	var got any
	routers := make([]*routing.AODV, 5)
	for i, n := range r2.nodes {
		var err error
		routers[i], err = routing.NewAODV(n, &st2, func(from vnet.Addr, data any, lat sim.Time, hops int) {
			got = data
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := routers[0].Send(4, 400, "via-aodv"); err != nil {
		t.Fatal(err)
	}
	if err := r2.k.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got != "via-aodv" {
		t.Fatalf("AODV did not deliver: delivered=%d dropped=%d control=%d",
			st2.Delivered.Value(), st2.Dropped.Value(), st2.ControlMsgs.Value())
	}
	if st2.ControlMsgs.Value() == 0 {
		t.Error("AODV delivery without control traffic is impossible")
	}
}

func TestEpidemicFloodsAndDeduplicates(t *testing.T) {
	r := newChain(t, 6, 140)
	var stats routing.Stats
	count := 0
	routers := make([]*routing.Epidemic, 6)
	for i, n := range r.nodes {
		var err error
		routers[i], err = routing.NewEpidemic(n, &stats, func(from vnet.Addr, data any, lat sim.Time, hops int) {
			count++
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := routers[0].Send(5, 300, "flood"); err != nil {
		t.Fatal(err)
	}
	if err := r.k.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("deliver callback ran %d times, want exactly 1 (dedup)", count)
	}
	// Flooding must cost far more transmissions than the hop count.
	if stats.Transmissions.Value() < 5 {
		t.Errorf("transmissions = %d, expected a flood", stats.Transmissions.Value())
	}
}

func TestEpidemicStopsOnTTL(t *testing.T) {
	// A chain longer than the TTL over a lossless radio, so the TTL is
	// the only thing that can stop the wave: the far end must not
	// receive and the exhaustion must be recorded.
	k := sim.NewKernel(1)
	p := radio.DefaultParams()
	p.RangeReliable = p.RangeMax
	p.CollisionFactor = 0
	bounds := geo.NewRect(geo.Point{X: -100, Y: -100}, geo.Point{X: 250*20 + 100, Y: 100})
	m, err := radio.NewMedium(k, bounds, p)
	if err != nil {
		t.Fatal(err)
	}
	r := &chainRig{k: k, m: m}
	for i := 0; i < 20; i++ {
		pos := geo.Point{X: float64(i) * 250, Y: 0}
		m.UpdatePosition(vnet.Addr(i), pos)
		node, err := vnet.NewNode(k, m, vnet.Addr(i), vnet.Config{},
			func() (geo.Point, float64, float64) { return pos, 0, 0 })
		if err != nil {
			t.Fatal(err)
		}
		r.nodes = append(r.nodes, node)
	}
	var stats routing.Stats
	reached := false
	routers := make([]*routing.Epidemic, 20)
	for i, n := range r.nodes {
		var err error
		routers[i], err = routing.NewEpidemic(n, &stats, func(from vnet.Addr, data any, lat sim.Time, hops int) {
			reached = true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := routers[0].Send(19, 300, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.k.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if reached {
		t.Error("packet crossed 19 hops with TTL 16")
	}
	if stats.Dropped.Value() == 0 {
		t.Error("TTL exhaustion not recorded")
	}
}

// buildMobile wires N vehicles with a router factory on a highway and
// fires packet exchanges between random pairs.
func buildMobile(t testing.TB, seed int64, vehicles int, mk func(n *vnet.Node, st *routing.Stats, s *scenario.Scenario, id mobility.VehicleID) (routing.Router, error)) (*scenario.Scenario, *routing.Stats, []routing.Router) {
	t.Helper()
	net, err := roadnet.Highway(roadnet.HighwaySpec{LengthM: 3000, Segments: 3, SpeedLimit: 25, Lanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := scenario.New(scenario.Spec{Seed: seed, Network: net, NumVehicles: vehicles})
	if err != nil {
		t.Fatal(err)
	}
	stats := &routing.Stats{}
	var routers []routing.Router
	for _, id := range s.VehicleIDs() {
		node, _ := s.Node(id)
		rt, err := mk(node, stats, s, id)
		if err != nil {
			t.Fatal(err)
		}
		routers = append(routers, rt)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s, stats, routers
}

func TestMoZoOutperformsGreedyUnderMobility(t *testing.T) {
	run := func(useMozo bool) float64 {
		var total, delivered uint64
		for seed := int64(1); seed <= 2; seed++ {
			// Both protocols originate with a stale location service
			// (20 s snapshots); MoZo heads refresh from fresh zone
			// knowledge — the [22] design point.
			var stale *routing.StaleLoc
			mk := func(n *vnet.Node, st *routing.Stats, s *scenario.Scenario, id mobility.VehicleID) (routing.Router, error) {
				if stale == nil {
					stale = routing.NewStaleLoc(oracle(s.Medium), s.Kernel.Now, 20*time.Second)
				}
				if !useMozo {
					return routing.NewGreedy(n, st, routing.GeoConfig{Loc: stale}, nil)
				}
				r, err := cluster.NewRunner(n, cluster.MobilitySimilarity{}, time.Second, nil)
				if err != nil {
					return nil, err
				}
				return routing.NewMoZo(n, st, routing.GeoConfig{Loc: stale, ZoneLoc: oracle(s.Medium)}, r.State, nil)
			}
			s, stats, routers := buildMobile(t, seed, 40, mk)
			// Warm up clustering/beacons, then send 60 packets over a minute.
			if err := s.RunFor(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			rng := s.Kernel.NewStream("traffic")
			for i := 0; i < 60; i++ {
				i := i
				s.Kernel.After(sim.Time(i)*time.Second/2, func() {
					src := routers[rng.Intn(len(routers))]
					ids := s.VehicleIDs()
					dst := vnet.Addr(ids[rng.Intn(len(ids))])
					_ = src.Send(dst, 500, fmt.Sprintf("pkt-%d", i))
				})
			}
			if err := s.RunFor(60 * time.Second); err != nil {
				t.Fatal(err)
			}
			total += stats.Originated.Value()
			delivered += stats.Delivered.Value()
		}
		if total == 0 {
			t.Fatal("no packets originated")
		}
		return float64(delivered) / float64(total)
	}
	greedy := run(false)
	mozo := run(true)
	t.Logf("delivery: greedy=%.2f mozo=%.2f", greedy, mozo)
	if mozo < 0.3 {
		t.Errorf("MoZo delivery ratio %v unreasonably low", mozo)
	}
	// MoZo should not be materially worse; allow small noise margin.
	if mozo+0.05 < greedy {
		t.Errorf("MoZo (%.2f) should at least match greedy (%.2f) under mobility", mozo, greedy)
	}
}

func TestEpidemicBestDeliveryWorstOverhead(t *testing.T) {
	mkEpidemic := func(n *vnet.Node, st *routing.Stats, s *scenario.Scenario, id mobility.VehicleID) (routing.Router, error) {
		return routing.NewEpidemic(n, st, nil)
	}
	mkGreedy := func(n *vnet.Node, st *routing.Stats, s *scenario.Scenario, id mobility.VehicleID) (routing.Router, error) {
		return routing.NewGreedy(n, st, routing.GeoConfig{Loc: oracle(s.Medium)}, nil)
	}
	send := func(s *scenario.Scenario, routers []routing.Router) {
		rng := s.Kernel.NewStream("traffic")
		for i := 0; i < 30; i++ {
			i := i
			s.Kernel.After(sim.Time(i)*time.Second, func() {
				src := routers[rng.Intn(len(routers))]
				ids := s.VehicleIDs()
				dst := vnet.Addr(ids[rng.Intn(len(ids))])
				_ = src.Send(dst, 500, i)
			})
		}
	}
	sE, stE, rE := buildMobile(t, 5, 30, mkEpidemic)
	send(sE, rE)
	if err := sE.RunFor(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	sG, stG, rG := buildMobile(t, 5, 30, mkGreedy)
	send(sG, rG)
	if err := sG.RunFor(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if stE.OverheadPerDelivery() <= stG.OverheadPerDelivery() {
		t.Errorf("epidemic overhead (%.1f tx/delivery) should exceed greedy (%.1f)",
			stE.OverheadPerDelivery(), stG.OverheadPerDelivery())
	}
	if stE.DeliveryRatio() == 0 {
		t.Error("epidemic delivered nothing")
	}
}

func TestStatsHelpers(t *testing.T) {
	var s routing.Stats
	if s.DeliveryRatio() != 0 {
		t.Error("empty ratio should be 0")
	}
	s.Transmissions.Add(10)
	if s.OverheadPerDelivery() != 10 {
		t.Error("overhead with zero deliveries should equal transmissions")
	}
	s.Originated.Add(4)
	s.Delivered.Add(2)
	if s.DeliveryRatio() != 0.5 {
		t.Errorf("ratio = %v", s.DeliveryRatio())
	}
	if s.OverheadPerDelivery() != 5 {
		t.Errorf("overhead = %v", s.OverheadPerDelivery())
	}
}
