package routing

import (
	"fmt"
	"math/rand"
	"time"

	"vcloud/internal/geo"
	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

const (
	geocastKind = "route.geocast"
	geocastTTL  = 24
)

// GeoPacket is a region-addressed payload: every vehicle inside the
// circle should receive it. This is the dissemination primitive of the
// paper's emergency scenarios (§V.A: "set the vehicles in a given range
// into an emergency mode", evacuation notices, local hazard warnings).
type GeoPacket struct {
	Center geo.Point
	Radius float64
	// SenderPos is the transmitting hop's position, used for the
	// directed-flood forwarding rule.
	SenderPos geo.Point
	Data      any
}

// Geocast delivers messages to every node inside a target region using
// directed flooding: a receiver rebroadcasts if it is inside the region,
// or strictly closer to it than the hop it heard the packet from —
// frames flow toward the region and flood within it, without soaking
// the whole network.
type Geocast struct {
	common
	rng *rand.Rand
	// DeliverRegion fires once per node inside the region.
	deliverRegion func(from vnet.Addr, data any, latency sim.Time)
	stopped       bool
}

// NewGeocast creates a geocast endpoint on node. deliver fires when a
// region-addressed packet arrives at this node while it is inside the
// target region.
func NewGeocast(node *vnet.Node, stats *Stats, deliver func(from vnet.Addr, data any, latency sim.Time)) (*Geocast, error) {
	c, err := newCommon(node, stats, nil)
	if err != nil {
		return nil, err
	}
	g := &Geocast{
		common:        c,
		rng:           node.Kernel().NewStream(fmt.Sprintf("geocast-%d", node.Addr())),
		deliverRegion: deliver,
	}
	node.Handle(geocastKind, g.onMessage)
	return g, nil
}

// Name implements Router naming conventions.
func (g *Geocast) Name() string { return "geocast" }

// Stop detaches the endpoint.
func (g *Geocast) Stop() {
	if g.stopped {
		return
	}
	g.stopped = true
	g.node.Handle(geocastKind, nil)
}

// SendRegion disseminates data to every node within radius of center.
func (g *Geocast) SendRegion(center geo.Point, radius float64, size int, data any) error {
	if g.stopped {
		return fmt.Errorf("routing: geocast stopped")
	}
	if radius <= 0 {
		return fmt.Errorf("routing: geocast radius must be positive, got %v", radius)
	}
	pkt := GeoPacket{Center: center, Radius: radius, SenderPos: g.node.Position(), Data: data}
	msg := g.node.NewMessage(vnet.BroadcastAddr, geocastKind, size, geocastTTL, pkt)
	g.stats.Originated.Inc()
	g.node.Seen(msg)
	g.transmitTwice(msg, 0)
	// The sender may itself be in the region.
	g.maybeDeliver(msg, pkt)
	return nil
}

// transmitTwice sends the frame now (after delay) and once more ~100 ms
// later: broadcasts have no link-layer ARQ, so a single collision could
// otherwise sever the directed flood.
func (g *Geocast) transmitTwice(msg vnet.Message, delay sim.Time) {
	send := func() {
		if g.stopped {
			return
		}
		g.stats.Transmissions.Inc()
		g.node.BroadcastLocal(msg)
	}
	if delay == 0 {
		send()
	} else {
		g.node.Kernel().After(delay, send)
	}
	gap := 100*time.Millisecond + sim.Time(g.rng.Int63n(int64(50*time.Millisecond)))
	g.node.Kernel().After(delay+gap, send)
}

func (g *Geocast) maybeDeliver(msg vnet.Message, pkt GeoPacket) {
	if g.deliverRegion == nil {
		return
	}
	if g.node.Position().Dist(pkt.Center) <= pkt.Radius {
		g.stats.Delivered.Inc()
		lat := g.node.Kernel().Now() - msg.OriginatedAt
		g.stats.Latency.ObserveDuration(lat)
		g.deliverRegion(msg.Origin, pkt.Data, lat)
	}
}

func (g *Geocast) onMessage(msg vnet.Message, _ vnet.Addr) {
	if g.stopped {
		return
	}
	pkt, ok := msg.Payload.(GeoPacket)
	if !ok {
		return
	}
	if g.node.Seen(msg) {
		return
	}
	g.maybeDeliver(msg, pkt)

	// Forwarding rule: inside the region → flood; outside → only if this
	// hop makes strict progress toward the region versus the previous
	// transmitter (with a 20 m hysteresis against ping-pong).
	self := g.node.Position()
	inRegion := self.Dist(pkt.Center) <= pkt.Radius
	progress := self.Dist(pkt.Center)+20 < pkt.SenderPos.Dist(pkt.Center)
	if !inRegion && !progress {
		return
	}
	msg.TTL--
	if msg.TTL <= 0 {
		g.stats.Dropped.Inc()
		return
	}
	pkt.SenderPos = self
	msg.Payload = pkt
	g.transmitTwice(msg, sim.Time(g.rng.Int63n(int64(20*time.Millisecond))))
}
