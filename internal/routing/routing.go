// Package routing implements the VANET routing protocols surveyed in the
// paper's §IV.A.1, all running hop-by-hop over the lossy radio medium:
//
//   - MoZo (moving-zone based routing, Lin et al. [22] — the authors' own
//     system): greedy geographic forwarding assisted by cluster heads,
//     which refresh the destination's position from zone knowledge and
//     prefer same-direction next hops so links live longer.
//   - Greedy: plain greedy geographic forwarding with carry-and-forward
//     when no neighbor makes progress (GPSR-like baseline).
//   - AODV: on-demand route discovery (RREQ flood / RREP reverse path)
//     with route expiry — the topology-based baseline that suffers under
//     mobility.
//   - Epidemic: TTL-bounded flooding — the delivery upper bound with
//     ruinous overhead.
//
// Every protocol reports through a shared Stats so experiment E4 can
// print the paper-style comparison rows.
package routing

import (
	"fmt"

	"vcloud/internal/geo"
	"vcloud/internal/metrics"
	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

// Packet is the routed payload envelope.
type Packet struct {
	// DestPos is the destination position stamp used by geographic
	// protocols; refreshed by MoZo at head hops.
	DestPos geo.Point
	// Data is the application payload.
	Data any
}

// Stats aggregates routing outcomes across all nodes of one protocol
// instance set.
type Stats struct {
	Originated    metrics.Counter
	Delivered     metrics.Counter
	DupDelivered  metrics.Counter // duplicates reaching dest (epidemic)
	Dropped       metrics.Counter // TTL exhaustion, queue overflow, no route
	Transmissions metrics.Counter // every radio send (cost)
	ControlMsgs   metrics.Counter // protocol control traffic (RREQ/RREP)
	Latency       metrics.Histogram
}

// DeliveryRatio returns delivered/originated.
func (s *Stats) DeliveryRatio() float64 {
	return metrics.Ratio(s.Delivered.Value(), s.Originated.Value())
}

// OverheadPerDelivery returns transmissions per delivered packet.
func (s *Stats) OverheadPerDelivery() float64 {
	d := s.Delivered.Value()
	if d == 0 {
		return float64(s.Transmissions.Value())
	}
	return float64(s.Transmissions.Value()) / float64(d)
}

// LocService resolves a node's current position, as a location service
// (e.g. an RLS/GLS overlay) would. Geographic protocols query it at
// origination time only; the returned position then goes stale as the
// packet travels — that staleness is what zone-assisted refresh fixes.
type LocService interface {
	Lookup(addr vnet.Addr) (geo.Point, bool)
}

// OracleLoc is a LocService backed by the radio medium's true positions.
type OracleLoc struct {
	Positions interface {
		Position(id vnet.Addr) (geo.Point, bool)
	}
}

// Lookup implements LocService.
func (o OracleLoc) Lookup(addr vnet.Addr) (geo.Point, bool) {
	return o.Positions.Position(addr)
}

// StaleLoc models a realistic distributed location service: positions
// are snapshots refreshed at most once per Period, so a looked-up
// position can be up to Period old — at highway speeds, hundreds of
// meters wrong. This is the staleness MoZo's zone knowledge repairs.
type StaleLoc struct {
	Inner  LocService
	Clock  func() sim.Time
	Period sim.Time
	cache  map[vnet.Addr]staleEntry
}

type staleEntry struct {
	pos geo.Point
	at  sim.Time
}

// NewStaleLoc wraps inner with snapshot semantics.
func NewStaleLoc(inner LocService, clock func() sim.Time, period sim.Time) *StaleLoc {
	return &StaleLoc{Inner: inner, Clock: clock, Period: period, cache: make(map[vnet.Addr]staleEntry)}
}

// Lookup implements LocService.
func (s *StaleLoc) Lookup(addr vnet.Addr) (geo.Point, bool) {
	now := s.Clock()
	if e, ok := s.cache[addr]; ok && now-e.at < s.Period {
		return e.pos, true
	}
	pos, ok := s.Inner.Lookup(addr)
	if !ok {
		return geo.Point{}, false
	}
	s.cache[addr] = staleEntry{pos: pos, at: now}
	return pos, true
}

// Router is the per-node protocol endpoint.
type Router interface {
	// Name identifies the protocol.
	Name() string
	// Send originates a data packet toward dest.
	Send(dest vnet.Addr, size int, data any) error
	// Stop detaches the router's timers.
	Stop()
}

// DeliverFunc observes packets arriving at their destination node.
type DeliverFunc func(from vnet.Addr, data any, latency sim.Time, hops int)

// common holds what every protocol shares.
type common struct {
	node    *vnet.Node
	stats   *Stats
	deliver DeliverFunc
}

func newCommon(node *vnet.Node, stats *Stats, deliver DeliverFunc) (common, error) {
	if node == nil {
		return common{}, fmt.Errorf("routing: node must not be nil")
	}
	if stats == nil {
		return common{}, fmt.Errorf("routing: stats must not be nil")
	}
	return common{node: node, stats: stats, deliver: deliver}, nil
}

// arrived records a final delivery at this node.
func (c *common) arrived(msg vnet.Message, hops int) {
	lat := c.node.Kernel().Now() - msg.OriginatedAt
	c.stats.Delivered.Inc()
	c.stats.Latency.ObserveDuration(lat)
	if c.deliver != nil {
		pkt, _ := msg.Payload.(Packet)
		c.deliver(msg.Origin, pkt.Data, lat, hops)
	}
}
