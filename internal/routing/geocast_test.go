package routing_test

import (
	"testing"
	"time"

	"vcloud/internal/geo"
	"vcloud/internal/routing"
	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

func TestGeocastReachesRegionOnly(t *testing.T) {
	// A 12-node chain; the target region covers nodes 8..11. Nodes in
	// the region must receive; the flood must travel through the middle
	// without delivering there.
	r := newChain(t, 12, 140)
	var stats routing.Stats
	received := map[vnet.Addr]bool{}
	gcs := make([]*routing.Geocast, len(r.nodes))
	for i, n := range r.nodes {
		addr := n.Addr()
		var err error
		gcs[i], err = routing.NewGeocast(n, &stats, func(from vnet.Addr, data any, lat sim.Time) {
			received[addr] = true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Region centered at node 9 (x=1260), radius 290 → covers nodes
	// 7..11 (x in [970, 1550]).
	center := geo.Point{X: 1260, Y: 0}
	if err := gcs[0].SendRegion(center, 290, 300, "evacuate"); err != nil {
		t.Fatal(err)
	}
	if err := r.k.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 8; i <= 11; i++ {
		if !received[r.nodes[i].Addr()] {
			t.Errorf("node %d inside the region missed the geocast", i)
		}
	}
	for i := 0; i <= 5; i++ {
		if received[r.nodes[i].Addr()] {
			t.Errorf("node %d outside the region received a delivery", i)
		}
	}
	if stats.Delivered.Value() < 4 {
		t.Errorf("delivered = %d, want >= 4", stats.Delivered.Value())
	}
	// Directed flood: transmissions should be far below nodes × TTL.
	if stats.Transmissions.Value() > 30 {
		t.Errorf("transmissions = %d, directed flood should be bounded", stats.Transmissions.Value())
	}
}

func TestGeocastSenderInsideRegion(t *testing.T) {
	r := newChain(t, 3, 100)
	var stats routing.Stats
	got := 0
	g, err := routing.NewGeocast(r.nodes[0], &stats, func(vnet.Addr, any, sim.Time) { got++ })
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SendRegion(geo.Point{X: 0, Y: 0}, 50, 100, "self"); err != nil {
		t.Fatal(err)
	}
	if err := r.k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("sender inside region delivered %d times, want 1", got)
	}
}

func TestGeocastValidation(t *testing.T) {
	r := newChain(t, 1, 100)
	var stats routing.Stats
	g, err := routing.NewGeocast(r.nodes[0], &stats, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SendRegion(geo.Point{}, 0, 100, nil); err == nil {
		t.Error("zero radius should error")
	}
	g.Stop()
	g.Stop() // double stop safe
	if err := g.SendRegion(geo.Point{}, 100, 100, nil); err == nil {
		t.Error("send after stop should error")
	}
	if _, err := routing.NewGeocast(nil, &stats, nil); err == nil {
		t.Error("nil node should error")
	}
}
