package routing

import (
	"fmt"
	"math"
	"time"

	"vcloud/internal/cluster"
	"vcloud/internal/geo"
	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

const (
	greedyKind = "route.greedy"
	mozoKind   = "route.mozo"
	// geoTTL bounds hop counts for geographic forwarding.
	geoTTL = 32
	// carryTimeout is how long a packet may wait in the carry buffer for
	// a forwarding opportunity before being dropped.
	carryTimeout = 15 * time.Second
	// carryRetry is the buffer re-scan interval.
	carryRetry = 500 * time.Millisecond
)

// GeoConfig tunes the geographic routers.
type GeoConfig struct {
	// Loc resolves destination positions at origination (typically a
	// StaleLoc standing in for a distributed location service).
	Loc LocService
	// ZoneLoc is what MoZo heads refresh stamps from — the moving-zone
	// membership knowledge, which is kept fresh by intra-zone beaconing.
	// Defaults to Loc (no advantage) when nil.
	ZoneLoc LocService
	// CarryTimeout overrides the default 15 s carry buffer deadline.
	CarryTimeout sim.Time
}

// Greedy is plain greedy geographic forwarding with carry-and-forward.
type Greedy struct {
	common
	cfg     GeoConfig
	kind    string
	buffer  []carried
	ticker  *sim.Ticker
	stopped bool

	// zone support (nil for plain greedy): set by MoZo.
	clusterState func() cluster.State
	refreshLoc   bool
}

type carried struct {
	msg      vnet.Message
	deadline sim.Time
}

// NewGreedy creates a greedy geographic router on node.
func NewGreedy(node *vnet.Node, stats *Stats, cfg GeoConfig, deliver DeliverFunc) (*Greedy, error) {
	return newGeoRouter(node, stats, cfg, deliver, greedyKind, nil, false)
}

// NewMoZo creates a moving-zone router on node. clusterState must report
// the node's live cluster assignment (from a cluster.Runner); heads
// refresh destination position stamps, and next-hop selection prefers
// same-direction neighbors.
func NewMoZo(node *vnet.Node, stats *Stats, cfg GeoConfig, clusterState func() cluster.State, deliver DeliverFunc) (*Greedy, error) {
	if clusterState == nil {
		return nil, fmt.Errorf("routing: MoZo requires a cluster state source")
	}
	return newGeoRouter(node, stats, cfg, deliver, mozoKind, clusterState, true)
}

func newGeoRouter(node *vnet.Node, stats *Stats, cfg GeoConfig, deliver DeliverFunc, kind string, cs func() cluster.State, refresh bool) (*Greedy, error) {
	c, err := newCommon(node, stats, deliver)
	if err != nil {
		return nil, err
	}
	if cfg.Loc == nil {
		return nil, fmt.Errorf("routing: GeoConfig.Loc must not be nil")
	}
	if cfg.CarryTimeout <= 0 {
		cfg.CarryTimeout = carryTimeout
	}
	if cfg.ZoneLoc == nil {
		cfg.ZoneLoc = cfg.Loc
	}
	g := &Greedy{common: c, cfg: cfg, kind: kind, clusterState: cs, refreshLoc: refresh}
	node.Handle(kind, g.onMessage)
	t, err := node.Kernel().Every(carryRetry, g.drainBuffer)
	if err != nil {
		return nil, err
	}
	g.ticker = t
	return g, nil
}

// Name implements Router.
func (g *Greedy) Name() string {
	if g.kind == mozoKind {
		return "mozo"
	}
	return "greedy"
}

// Stop implements Router.
func (g *Greedy) Stop() {
	if g.stopped {
		return
	}
	g.stopped = true
	g.ticker.Stop()
	g.node.Handle(g.kind, nil)
}

// Send implements Router.
func (g *Greedy) Send(dest vnet.Addr, size int, data any) error {
	if g.stopped {
		return fmt.Errorf("routing: router stopped")
	}
	if dest == g.node.Addr() {
		return fmt.Errorf("routing: cannot send to self")
	}
	pos, ok := g.cfg.Loc.Lookup(dest)
	if !ok {
		return fmt.Errorf("routing: no location for destination %d", dest)
	}
	msg := g.node.NewMessage(dest, g.kind, size, geoTTL, Packet{DestPos: pos, Data: data})
	g.stats.Originated.Inc()
	g.route(msg)
	return nil
}

func (g *Greedy) onMessage(msg vnet.Message, _ vnet.Addr) {
	if g.stopped {
		return
	}
	if msg.Dest == g.node.Addr() {
		if g.node.Seen(msg) {
			g.stats.DupDelivered.Inc()
			return
		}
		g.arrived(msg, geoTTL-msg.TTL)
		return
	}
	g.route(msg)
}

// route forwards msg toward its stamped destination position, or buffers
// it when no neighbor makes progress.
func (g *Greedy) route(msg vnet.Message) {
	if g.refreshLoc && g.isHead() {
		// Zone assist: the head refreshes the destination stamp from zone
		// knowledge before forwarding.
		if pos, ok := g.cfg.ZoneLoc.Lookup(msg.Dest); ok {
			pkt, _ := msg.Payload.(Packet)
			pkt.DestPos = pos
			msg.Payload = pkt
		}
	}
	next, ok := g.nextHop(msg)
	if !ok {
		g.buffer = append(g.buffer, carried{
			msg:      msg,
			deadline: g.node.Kernel().Now() + g.cfg.CarryTimeout,
		})
		return
	}
	g.stats.Transmissions.Inc()
	if !g.node.Forward(next, msg) {
		g.stats.Dropped.Inc()
	}
}

func (g *Greedy) isHead() bool {
	return g.clusterState != nil && g.clusterState().Role == cluster.Head
}

// nextHop picks the forwarding target: the destination itself when it is
// a live neighbor; otherwise the neighbor strictly closest to the stamped
// destination (MoZo additionally prefers same-direction neighbors and
// falls back to its cluster head for fresher zone knowledge).
func (g *Greedy) nextHop(msg vnet.Message) (vnet.Addr, bool) {
	pkt, _ := msg.Payload.(Packet)
	nbrs := g.node.Neighbors(nil)
	self := g.node.Position()
	myDist := self.Dist(pkt.DestPos)
	// Only forward over links inside the reliable reception radius (with
	// a stale-beacon margin): fade-zone links lose most frames even with
	// ARQ, so choosing the geographically farthest neighbor blindly is a
	// net loss.
	maxLink := g.node.Medium().Params().RangeReliable * 1.2

	best := vnet.Addr(-1)
	bestDist := myDist
	myHeading := g.node.Heading()
	for _, nb := range nbrs {
		if self.Dist(nb.Pos) > maxLink {
			continue
		}
		if nb.Addr == msg.Dest {
			return nb.Addr, true
		}
		d := nb.Pos.Dist(pkt.DestPos)
		if d >= myDist {
			continue
		}
		if g.kind == mozoKind {
			// Zone continuity: same-direction neighbors get a fixed
			// effective-distance bonus — their links live longer, so a
			// slightly shorter geographic step is worth it, but a hard
			// preference would sacrifice too much progress per hop.
			if geo.AngleDiff(myHeading, nb.Heading) < math.Pi/2 {
				d -= 40
			}
		}
		if d < bestDist {
			best, bestDist = nb.Addr, d
		}
	}
	if best >= 0 {
		return best, true
	}
	// MoZo: a member with no progress hands the packet to its head, which
	// has fresher zone knowledge — but only if the head is a live
	// neighbor and not where the packet just came from.
	if g.clusterState != nil {
		st := g.clusterState()
		if st.Role == cluster.Member && st.Head >= 0 && st.Head != g.node.Addr() {
			if _, ok := g.node.Neighbor(st.Head); ok && !g.node.Seen(seenTag(msg, g.node.Addr())) {
				return st.Head, true
			}
		}
	}
	return -1, false
}

// seenTag derives a pseudo-message key marking "this node already escalated
// this packet to its head once", preventing member→head→member loops.
func seenTag(msg vnet.Message, at vnet.Addr) vnet.Message {
	return vnet.Message{Origin: msg.Origin ^ (at << 8), Seq: msg.Seq | 1<<31}
}

// drainBuffer retries carried packets and drops expired ones.
func (g *Greedy) drainBuffer() {
	if g.stopped || len(g.buffer) == 0 {
		return
	}
	now := g.node.Kernel().Now()
	keep := g.buffer[:0]
	for _, c := range g.buffer {
		if now > c.deadline {
			g.stats.Dropped.Inc()
			continue
		}
		if next, ok := g.nextHop(c.msg); ok {
			g.stats.Transmissions.Inc()
			if !g.node.Forward(next, c.msg) {
				g.stats.Dropped.Inc()
			}
			continue
		}
		keep = append(keep, c)
	}
	g.buffer = keep
}

// BufferLen reports how many packets are waiting for a forwarding
// opportunity (exposed for tests and experiments).
func (g *Greedy) BufferLen() int { return len(g.buffer) }

var _ Router = (*Greedy)(nil)
