package routing

import (
	"fmt"
	"time"

	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

const (
	aodvDataKind = "route.aodv.data"
	aodvReqKind  = "route.aodv.rreq"
	aodvRepKind  = "route.aodv.rrep"
	aodvTTL      = 16
	// aodvRouteLifetime is how long a discovered route stays valid; high
	// mobility breaks routes well before expiry, which is the point of
	// the E4 comparison.
	aodvRouteLifetime = 10 * time.Second
	// aodvQueueDeadline bounds how long data waits for route discovery.
	aodvQueueDeadline = 5 * time.Second
)

// rreq is the route-request payload.
type rreq struct {
	Target vnet.Addr
}

// rrep is the route-reply payload, unicast along the reverse path.
type rrep struct {
	Target vnet.Addr // the discovered destination
	Source vnet.Addr // the RREQ originator the reply travels to
}

type routeEntry struct {
	next    vnet.Addr
	expires sim.Time
}

// AODV is the reactive (on-demand) routing baseline.
type AODV struct {
	common
	routes  map[vnet.Addr]routeEntry
	pending map[vnet.Addr][]pendingPacket
	ticker  *sim.Ticker
	stopped bool
}

type pendingPacket struct {
	msg      vnet.Message
	deadline sim.Time
}

// NewAODV creates an AODV-lite router on node.
func NewAODV(node *vnet.Node, stats *Stats, deliver DeliverFunc) (*AODV, error) {
	c, err := newCommon(node, stats, deliver)
	if err != nil {
		return nil, err
	}
	a := &AODV{
		common:  c,
		routes:  make(map[vnet.Addr]routeEntry),
		pending: make(map[vnet.Addr][]pendingPacket),
	}
	node.Handle(aodvDataKind, a.onData)
	node.Handle(aodvReqKind, a.onRREQ)
	node.Handle(aodvRepKind, a.onRREP)
	t, err := node.Kernel().Every(time.Second, a.expirePending)
	if err != nil {
		return nil, err
	}
	a.ticker = t
	return a, nil
}

// Name implements Router.
func (a *AODV) Name() string { return "aodv" }

// Stop implements Router.
func (a *AODV) Stop() {
	if a.stopped {
		return
	}
	a.stopped = true
	a.ticker.Stop()
	a.node.Handle(aodvDataKind, nil)
	a.node.Handle(aodvReqKind, nil)
	a.node.Handle(aodvRepKind, nil)
}

// Send implements Router.
func (a *AODV) Send(dest vnet.Addr, size int, data any) error {
	if a.stopped {
		return fmt.Errorf("routing: router stopped")
	}
	if dest == a.node.Addr() {
		return fmt.Errorf("routing: cannot send to self")
	}
	msg := a.node.NewMessage(dest, aodvDataKind, size, aodvTTL, Packet{Data: data})
	a.stats.Originated.Inc()
	a.forwardData(msg)
	return nil
}

// route returns a live route entry.
func (a *AODV) route(dest vnet.Addr) (routeEntry, bool) {
	e, ok := a.routes[dest]
	if !ok {
		return routeEntry{}, false
	}
	if a.node.Kernel().Now() > e.expires {
		delete(a.routes, dest)
		return routeEntry{}, false
	}
	return e, true
}

// learn records a route to dest via next.
func (a *AODV) learn(dest, next vnet.Addr) {
	if dest == a.node.Addr() {
		return
	}
	a.routes[dest] = routeEntry{next: next, expires: a.node.Kernel().Now() + aodvRouteLifetime}
}

func (a *AODV) forwardData(msg vnet.Message) {
	// Destination adjacent? Deliver directly.
	if _, ok := a.node.Neighbor(msg.Dest); ok {
		a.stats.Transmissions.Inc()
		if !a.node.Forward(msg.Dest, msg) {
			a.stats.Dropped.Inc()
		}
		return
	}
	if e, ok := a.route(msg.Dest); ok {
		a.stats.Transmissions.Inc()
		if !a.node.Forward(e.next, msg) {
			a.stats.Dropped.Inc()
		}
		return
	}
	// No route: only the origin queues and discovers; intermediate nodes
	// drop (route broke underneath the packet).
	if msg.Origin != a.node.Addr() {
		a.stats.Dropped.Inc()
		return
	}
	a.pending[msg.Dest] = append(a.pending[msg.Dest], pendingPacket{
		msg:      msg,
		deadline: a.node.Kernel().Now() + aodvQueueDeadline,
	})
	a.discover(msg.Dest)
}

func (a *AODV) discover(target vnet.Addr) {
	req := a.node.NewMessage(vnet.BroadcastAddr, aodvReqKind, 64, aodvTTL, rreq{Target: target})
	a.stats.ControlMsgs.Inc()
	a.stats.Transmissions.Inc()
	a.node.Seen(req) // don't re-process our own flood
	a.node.BroadcastLocal(req)
}

func (a *AODV) onRREQ(msg vnet.Message, relayer vnet.Addr) {
	if a.stopped || a.node.Seen(msg) {
		return
	}
	req, ok := msg.Payload.(rreq)
	if !ok {
		return
	}
	// Reverse route to the RREQ originator.
	a.learn(msg.Origin, relayer)
	if req.Target == a.node.Addr() {
		// Reply along the reverse path.
		rep := a.node.NewMessage(msg.Origin, aodvRepKind, 64, aodvTTL, rrep{Target: req.Target, Source: msg.Origin})
		a.stats.ControlMsgs.Inc()
		a.stats.Transmissions.Inc()
		a.node.SendTo(relayer, rep)
		return
	}
	// Re-flood.
	msg.TTL--
	if msg.TTL <= 0 {
		return
	}
	a.stats.ControlMsgs.Inc()
	a.stats.Transmissions.Inc()
	a.node.BroadcastLocal(msg)
}

func (a *AODV) onRREP(msg vnet.Message, relayer vnet.Addr) {
	if a.stopped {
		return
	}
	rep, ok := msg.Payload.(rrep)
	if !ok {
		return
	}
	// Forward route to the replying destination.
	a.learn(rep.Target, relayer)
	if rep.Source == a.node.Addr() {
		// Discovery complete: flush queued data.
		a.flush(rep.Target)
		return
	}
	// Relay the RREP along the reverse route to the source.
	if e, ok := a.route(rep.Source); ok {
		a.stats.ControlMsgs.Inc()
		a.stats.Transmissions.Inc()
		if !a.node.Forward(e.next, msg) {
			a.stats.Dropped.Inc()
		}
	}
}

func (a *AODV) flush(dest vnet.Addr) {
	queued := a.pending[dest]
	delete(a.pending, dest)
	for _, p := range queued {
		a.forwardData(p.msg)
	}
}

func (a *AODV) onData(msg vnet.Message, relayer vnet.Addr) {
	if a.stopped {
		return
	}
	// Passive route learning: the relayer can reach the origin.
	a.learn(msg.Origin, relayer)
	if msg.Dest == a.node.Addr() {
		if a.node.Seen(msg) {
			a.stats.DupDelivered.Inc()
			return
		}
		a.arrived(msg, aodvTTL-msg.TTL)
		return
	}
	a.forwardData(msg)
}

// expirePending drops queued data whose route discovery never completed.
func (a *AODV) expirePending() {
	if a.stopped {
		return
	}
	now := a.node.Kernel().Now()
	for dest, queued := range a.pending {
		keep := queued[:0]
		for _, p := range queued {
			if now > p.deadline {
				a.stats.Dropped.Inc()
				continue
			}
			keep = append(keep, p)
		}
		if len(keep) == 0 {
			delete(a.pending, dest)
		} else {
			a.pending[dest] = keep
		}
	}
}

var _ Router = (*AODV)(nil)
