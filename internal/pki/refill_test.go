package pki_test

import (
	"math/rand"
	"testing"
	"time"

	"vcloud/internal/cryptoprim"
	"vcloud/internal/geo"
	"vcloud/internal/pki"
	"vcloud/internal/radio"
	"vcloud/internal/sim"
	"vcloud/internal/vnet"
)

type refillRig struct {
	k      *sim.Kernel
	m      *radio.Medium
	ta     *pki.TA
	server *pki.RefillServer
	client *pki.RefillClient
	enr    *pki.Enrollment
	stats  *pki.RefillStats
}

func newRefillRig(t *testing.T) *refillRig {
	t.Helper()
	k := sim.NewKernel(3)
	bounds := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 1000, Y: 1000})
	m, err := radio.NewMedium(k, bounds, radio.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ta, err := pki.New("TA", rand.New(rand.NewSource(3)), pki.Config{PoolSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	mkNode := func(addr vnet.Addr, x float64) *vnet.Node {
		pos := geo.Point{X: x, Y: 100}
		m.UpdatePosition(addr, pos)
		n, err := vnet.NewNode(k, m, addr, vnet.Config{}, func() (geo.Point, float64, float64) { return pos, 0, 0 })
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	rsuNode := mkNode(1<<20, 100)
	vehNode := mkNode(0, 180)
	stats := &pki.RefillStats{}
	server, err := pki.NewRefillServer(rsuNode, ta, stats)
	if err != nil {
		t.Fatal(err)
	}
	enr, err := ta.Enroll("veh-0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := pki.NewRefillClient(vehNode, enr)
	if err != nil {
		t.Fatal(err)
	}
	return &refillRig{k: k, m: m, ta: ta, server: server, client: client, enr: enr, stats: stats}
}

func TestRefillValidation(t *testing.T) {
	r := newRefillRig(t)
	if _, err := pki.NewRefillServer(nil, r.ta, r.stats); err == nil {
		t.Error("nil node should error")
	}
	if _, err := pki.NewRefillClient(nil, r.enr); err == nil {
		t.Error("nil node should error")
	}
}

func TestRefillReplacesPoolAndKeepsTraceability(t *testing.T) {
	r := newRefillRig(t)
	// Exhaust the pool.
	for i := 0; i < 4; i++ {
		r.enr.Pseudonyms.Rotate()
	}
	if !r.client.NeedsRefill() {
		t.Fatal("wrapped pool should need a refill")
	}
	oldSerial := r.enr.Pseudonyms.Current().Cert.SerialOf()

	var got *cryptoprim.PseudonymPool
	r.client.Request(1<<20, func(p *cryptoprim.PseudonymPool) { got = p })
	if err := r.k.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatalf("refill did not complete (requests=%d rejected=%d)",
			r.stats.Requests.Value(), r.stats.Rejected.Value())
	}
	if r.enr.Pseudonyms != got {
		t.Error("enrollment pool not replaced")
	}
	if r.client.NeedsRefill() {
		t.Error("fresh pool should not need refill")
	}
	newSerial := r.enr.Pseudonyms.Current().Cert.SerialOf()
	if newSerial == oldSerial {
		t.Error("refill returned the same pseudonyms")
	}
	// Both old and new pseudonyms trace to the vehicle at the TA.
	for _, serial := range []cryptoprim.Serial{oldSerial, newSerial} {
		owner, ok := r.ta.TracePseudonym(serial)
		if !ok || owner != "veh-0" {
			t.Errorf("TracePseudonym(%x…) = %q, %v", serial[:4], owner, ok)
		}
	}
	if r.stats.Issued.Value() != 1 || r.stats.BytesSent.Value() == 0 {
		t.Errorf("stats = %+v", r.stats)
	}
}

func TestRefillRejectsRevokedVehicle(t *testing.T) {
	r := newRefillRig(t)
	if err := r.ta.RevokeVehicle("veh-0"); err != nil {
		t.Fatal(err)
	}
	called := false
	r.client.Request(1<<20, func(*cryptoprim.PseudonymPool) { called = true })
	if err := r.k.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("revoked vehicle received a refill")
	}
	if r.stats.Rejected.Value() != 1 {
		t.Errorf("rejected = %d, want 1", r.stats.Rejected.Value())
	}
}

func TestRefillRejectsForgedSignature(t *testing.T) {
	r := newRefillRig(t)
	// A second vehicle presents veh-0's certificate but cannot sign for
	// it: enroll a second vehicle and splice certificates.
	enr2, err := r.ta.Enroll("veh-1")
	if err != nil {
		t.Fatal(err)
	}
	forged := *r.enr // copy of veh-0's enrollment…
	forged.LongKey = enr2.LongKey
	// …signed with veh-1's key: the server must reject.
	k := r.k
	node := clientNode(t, r)
	client2, err := pki.NewRefillClient(node, &forged)
	if err != nil {
		t.Fatal(err)
	}
	called := false
	client2.Request(1<<20, func(*cryptoprim.PseudonymPool) { called = true })
	if err := k.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("forged refill request was serviced")
	}
	if r.stats.Rejected.Value() == 0 {
		t.Error("forgery not recorded as rejected")
	}
}

// clientNode builds one more node on the rig's medium.
func clientNode(t *testing.T, r *refillRig) *vnet.Node {
	t.Helper()
	pos := geo.Point{X: 160, Y: 100}
	r.m.UpdatePosition(7, pos)
	n, err := vnet.NewNode(r.k, r.m, 7, vnet.Config{}, func() (geo.Point, float64, float64) { return pos, 0, 0 })
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRefillStopDetaches(t *testing.T) {
	r := newRefillRig(t)
	r.server.Stop()
	r.server.Stop() // double stop safe
	called := false
	r.client.Request(1<<20, func(*cryptoprim.PseudonymPool) { called = true })
	if err := r.k.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if called || r.stats.Issued.Value() != 0 {
		t.Error("stopped server serviced a request")
	}
	r.client.Stop()
	r.client.Stop() // double stop safe
}
