package pki

import (
	"math/rand"
	"testing"
	"time"

	"vcloud/internal/cryptoprim"
)

func newTA(t testing.TB, cfg Config) *TA {
	t.Helper()
	ta, err := New("TA", rand.New(rand.NewSource(1)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ta
}

func TestNewValidation(t *testing.T) {
	if _, err := New("TA", nil, Config{}); err == nil {
		t.Error("nil rand should error")
	}
	if _, err := New("", rand.New(rand.NewSource(1)), Config{}); err == nil {
		t.Error("empty name should error (CA rejects)")
	}
}

func TestEnrollProducesWorkingCredentials(t *testing.T) {
	ta := newTA(t, Config{PoolSize: 5})
	e, err := ta.Enroll("veh-1")
	if err != nil {
		t.Fatal(err)
	}
	if ta.NumEnrolled() != 1 {
		t.Errorf("NumEnrolled = %d", ta.NumEnrolled())
	}
	// Long-term cert verifies under the root.
	if err := cryptoprim.CheckCert(&e.LongTerm, ta.RootKey(), 0); err != nil {
		t.Errorf("long-term cert invalid: %v", err)
	}
	// Pseudonyms verify and the TA can trace them.
	if e.Pseudonyms.Size() != 5 {
		t.Errorf("pool size = %d", e.Pseudonyms.Size())
	}
	p := e.Pseudonyms.Current()
	if err := cryptoprim.CheckCert(&p.Cert, ta.RootKey(), 0); err != nil {
		t.Errorf("pseudonym cert invalid: %v", err)
	}
	owner, ok := ta.TracePseudonym(p.Cert.SerialOf())
	if !ok || owner != "veh-1" {
		t.Errorf("TracePseudonym = %q, %v", owner, ok)
	}
	// Group credential signs and the TA traces it.
	sig := e.Group.Sign([]byte("m"), 1)
	if !cryptoprim.VerifyGroupSig(ta.GroupKey(), []byte("m"), sig) {
		t.Error("group signature invalid")
	}
	who, ok := ta.TraceGroupSig(sig)
	if !ok || who != "veh-1" {
		t.Errorf("TraceGroupSig = %q, %v", who, ok)
	}
	// Chain ids trace.
	id0 := e.Chain.Next()
	veh, ok := ta.TraceChainID(id0, 4)
	if !ok || veh != "veh-1" {
		t.Errorf("TraceChainID = %q, %v", veh, ok)
	}
	if _, ok := ta.TraceChainID([32]byte{1, 2, 3}, 4); ok {
		t.Error("bogus chain id traced")
	}
}

func TestEnrollValidation(t *testing.T) {
	ta := newTA(t, Config{})
	if _, err := ta.Enroll(""); err == nil {
		t.Error("empty identity should error")
	}
	if _, err := ta.Enroll("veh-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ta.Enroll("veh-1"); err == nil {
		t.Error("double enrollment should error")
	}
}

func TestDefaultsApplied(t *testing.T) {
	ta := newTA(t, Config{})
	e, err := ta.Enroll("v")
	if err != nil {
		t.Fatal(err)
	}
	if e.Pseudonyms.Size() != 20 {
		t.Errorf("default pool size = %d, want 20", e.Pseudonyms.Size())
	}
	if e.LongTerm.NotAfter != 24*time.Hour {
		t.Errorf("default lifetime = %v", e.LongTerm.NotAfter)
	}
}

func TestRevocationPipeline(t *testing.T) {
	ta := newTA(t, Config{PoolSize: 7})
	e, err := ta.Enroll("veh-bad")
	if err != nil {
		t.Fatal(err)
	}
	if ta.IsRevoked("veh-bad") {
		t.Error("fresh vehicle reported revoked")
	}
	if err := ta.RevokeVehicle("veh-bad"); err != nil {
		t.Fatal(err)
	}
	if !ta.IsRevoked("veh-bad") {
		t.Error("IsRevoked false after revocation")
	}
	// CRL must now contain all 7 pseudonym serials — the pool-size
	// multiplication effect.
	if ta.CRL().Len() != 7 {
		t.Errorf("CRL len = %d, want 7", ta.CRL().Len())
	}
	for i := 0; i < 7; i++ {
		s := e.Pseudonyms.Current().Cert.SerialOf()
		if ok, _ := ta.CRL().ContainsLinear(s); !ok {
			t.Error("pseudonym serial missing from CRL")
		}
		e.Pseudonyms.Rotate()
	}
	// Group membership revoked too.
	sig := e.Group.Sign([]byte("m"), 2)
	if ta.GroupManager().CheckNotRevoked(sig) {
		t.Error("revoked vehicle passes group revocation check")
	}
	// Idempotent; unknown vehicle errors.
	if err := ta.RevokeVehicle("veh-bad"); err != nil {
		t.Errorf("double revoke should be a no-op, got %v", err)
	}
	if ta.CRL().Len() != 7 {
		t.Error("double revoke grew the CRL")
	}
	if err := ta.RevokeVehicle("ghost"); err == nil {
		t.Error("revoking unknown vehicle should error")
	}
}

func TestCRLGrowthScalesWithPoolSize(t *testing.T) {
	for _, pool := range []int{5, 20} {
		ta := newTA(t, Config{PoolSize: pool})
		for i := 0; i < 10; i++ {
			id := VehicleIdentity(string(rune('a' + i)))
			if _, err := ta.Enroll(id); err != nil {
				t.Fatal(err)
			}
			if err := ta.RevokeVehicle(id); err != nil {
				t.Fatal(err)
			}
		}
		if got := ta.CRL().Len(); got != 10*pool {
			t.Errorf("pool %d: CRL len = %d, want %d", pool, got, 10*pool)
		}
	}
}

func TestRevocationVersionAndHybridTags(t *testing.T) {
	ta := newTA(t, Config{PoolSize: 3})
	if ta.RevocationVersion() != 0 {
		t.Error("fresh TA version should be 0")
	}
	e, err := ta.Enroll("veh-a")
	if err != nil {
		t.Fatal(err)
	}
	id0 := e.Chain.Next()
	// Pre-revocation: no tags.
	if tags := ta.HybridRevocationTags(8); len(tags) != 0 {
		t.Errorf("tags before revocation = %d", len(tags))
	}
	if err := ta.RevokeVehicle("veh-a"); err != nil {
		t.Fatal(err)
	}
	if ta.RevocationVersion() != 1 {
		t.Errorf("version = %d, want 1", ta.RevocationVersion())
	}
	tags := ta.HybridRevocationTags(8)
	if len(tags) != 9 { // indices 0..8
		t.Errorf("tags = %d, want 9", len(tags))
	}
	if _, ok := tags[id0]; !ok {
		t.Error("revoked vehicle's chain id missing from tags")
	}
	// Idempotent revoke does not bump the version.
	if err := ta.RevokeVehicle("veh-a"); err != nil {
		t.Fatal(err)
	}
	if ta.RevocationVersion() != 1 {
		t.Error("idempotent revoke bumped version")
	}
}

func TestTraceGroupSigUnknown(t *testing.T) {
	ta := newTA(t, Config{})
	other, err := New("other", rand.New(rand.NewSource(9)), Config{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := other.Enroll("foreign")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ta.TraceGroupSig(e.Group.Sign([]byte("m"), 1)); ok {
		t.Error("foreign signature traced")
	}
}

func TestRefillPseudonymsValidation(t *testing.T) {
	ta := newTA(t, Config{PoolSize: 2})
	if _, err := ta.RefillPseudonyms("ghost"); err == nil {
		t.Error("refill for unknown vehicle should error")
	}
	if _, err := ta.Enroll("veh-r"); err != nil {
		t.Fatal(err)
	}
	if err := ta.RevokeVehicle("veh-r"); err != nil {
		t.Fatal(err)
	}
	if _, err := ta.RefillPseudonyms("veh-r"); err == nil {
		t.Error("refill for revoked vehicle should error")
	}
}
