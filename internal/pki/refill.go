package pki

import (
	"fmt"

	"vcloud/internal/cryptoprim"
	"vcloud/internal/metrics"
	"vcloud/internal/vnet"
)

// The pseudonym refill protocol of §V.A's v-cloud initialization: a
// vehicle whose pre-issued pseudonym pool is nearly exhausted requests a
// fresh batch from the TA through an RSU. The request is signed with the
// vehicle's long-term key (never its pseudonyms — the TA must know who
// it is provisioning), and the response carries the new pool. The RSU is
// a transparent relay to the TA; the TA records the new serials in its
// escrow so conditional traceability survives refills.

const (
	refillReqKind  = "pki.refill.req"
	refillRespKind = "pki.refill.resp"
)

// refillReq is the wire request.
type refillReq struct {
	Cert  cryptoprim.Certificate // long-term certificate
	Nonce uint64
	Sig   []byte // signature over (identity, nonce)
}

// refillResp is the wire response.
type refillResp struct {
	Nonce uint64
	Pool  *cryptoprim.PseudonymPool
}

// RefillStats aggregates refill-protocol outcomes.
type RefillStats struct {
	Requests  metrics.Counter
	Issued    metrics.Counter
	Rejected  metrics.Counter // bad signature, unknown or revoked vehicle
	BytesSent metrics.Counter
}

// RefillServer runs at an RSU (or any TA-connected node) and services
// pseudonym refill requests.
type RefillServer struct {
	node    *vnet.Node
	ta      *TA
	stats   *RefillStats
	stopped bool
}

// NewRefillServer attaches a refill service to node, backed by ta.
func NewRefillServer(node *vnet.Node, ta *TA, stats *RefillStats) (*RefillServer, error) {
	if node == nil || ta == nil || stats == nil {
		return nil, fmt.Errorf("pki: node, ta and stats must not be nil")
	}
	s := &RefillServer{node: node, ta: ta, stats: stats}
	node.Handle(refillReqKind, s.onRequest)
	return s, nil
}

// Stop detaches the server.
func (s *RefillServer) Stop() {
	if s.stopped {
		return
	}
	s.stopped = true
	s.node.Handle(refillReqKind, nil)
}

func refillChallenge(identity []byte, nonce uint64) []byte {
	d := cryptoprim.Digest([]byte("pki.refill"), identity, []byte(fmt.Sprintf("%d", nonce)))
	return d[:]
}

func (s *RefillServer) onRequest(msg vnet.Message, _ vnet.Addr) {
	if s.stopped {
		return
	}
	req, ok := msg.Payload.(refillReq)
	if !ok {
		return
	}
	s.stats.Requests.Inc()
	now := s.node.Kernel().Now()
	// The long-term certificate must be TA-issued and unexpired, the
	// signature must verify, and the vehicle must not be revoked.
	if err := cryptoprim.CheckCert(&req.Cert, s.ta.RootKey(), now); err != nil {
		s.stats.Rejected.Inc()
		return
	}
	identity := VehicleIdentity(req.Cert.Subject)
	if s.ta.IsRevoked(identity) {
		s.stats.Rejected.Inc()
		return
	}
	if !cryptoprim.Verify(req.Cert.PubKey, refillChallenge(req.Cert.Subject, req.Nonce), req.Sig) {
		s.stats.Rejected.Inc()
		return
	}
	pool, err := s.ta.RefillPseudonyms(identity)
	if err != nil {
		s.stats.Rejected.Inc()
		return
	}
	s.stats.Issued.Inc()
	size := 64 + pool.Size()*cryptoprim.CertWireSize
	s.stats.BytesSent.Add(size)
	resp := s.node.NewMessage(msg.Origin, refillRespKind, size, 1, refillResp{Nonce: req.Nonce, Pool: pool})
	s.node.SendTo(msg.Origin, resp)
}

// RefillClient runs at a vehicle and requests fresh pseudonym pools.
type RefillClient struct {
	node    *vnet.Node
	enroll  *Enrollment
	nonce   uint64
	pending map[uint64]func(*cryptoprim.PseudonymPool)
	stopped bool
}

// NewRefillClient attaches a refill client to the vehicle's node.
func NewRefillClient(node *vnet.Node, enroll *Enrollment) (*RefillClient, error) {
	if node == nil || enroll == nil {
		return nil, fmt.Errorf("pki: node and enrollment must not be nil")
	}
	c := &RefillClient{node: node, enroll: enroll, pending: make(map[uint64]func(*cryptoprim.PseudonymPool))}
	node.Handle(refillRespKind, c.onResponse)
	return c, nil
}

// Stop detaches the client.
func (c *RefillClient) Stop() {
	if c.stopped {
		return
	}
	c.stopped = true
	c.node.Handle(refillRespKind, nil)
}

// NeedsRefill reports whether the pool has wrapped (every pseudonym used
// at least once) — the trigger real deployments act on before
// linkability accumulates.
func (c *RefillClient) NeedsRefill() bool {
	return c.enroll.Pseudonyms.UsedCount() >= c.enroll.Pseudonyms.Size()
}

// Request asks the refill service at server for a fresh pool; on success
// the enrollment's pool is replaced and done (if non-nil) is called.
func (c *RefillClient) Request(server vnet.Addr, done func(*cryptoprim.PseudonymPool)) {
	if c.stopped {
		return
	}
	c.nonce++
	nonce := c.nonce
	c.pending[nonce] = done
	req := refillReq{
		Cert:  c.enroll.LongTerm,
		Nonce: nonce,
		Sig:   c.enroll.LongKey.Sign(refillChallenge([]byte(c.enroll.Identity), nonce)),
	}
	msg := c.node.NewMessage(server, refillReqKind, cryptoprim.CertWireSize+96, 1, req)
	c.node.SendTo(server, msg)
}

func (c *RefillClient) onResponse(msg vnet.Message, _ vnet.Addr) {
	if c.stopped {
		return
	}
	resp, ok := msg.Payload.(refillResp)
	if !ok || resp.Pool == nil {
		return
	}
	done, ok := c.pending[resp.Nonce]
	if !ok {
		return
	}
	delete(c.pending, resp.Nonce)
	c.enroll.Pseudonyms = resp.Pool
	if done != nil {
		done(resp.Pool)
	}
}

// RefillPseudonyms mints a fresh pseudonym pool for an enrolled,
// non-revoked vehicle and escrows the new serials.
func (t *TA) RefillPseudonyms(id VehicleIdentity) (*cryptoprim.PseudonymPool, error) {
	if _, ok := t.vehicleSerials[id]; !ok {
		return nil, fmt.Errorf("pki: vehicle %q not enrolled", id)
	}
	if t.IsRevoked(id) {
		return nil, fmt.Errorf("pki: vehicle %q is revoked", id)
	}
	pool, serials, err := cryptoprim.IssuePseudonyms(t.ca, t.cfg.PoolSize, t.cfg.CertLifetime, t.rand)
	if err != nil {
		return nil, err
	}
	for _, s := range serials {
		t.pseudonymOwner[s] = id
	}
	t.vehicleSerials[id] = append(t.vehicleSerials[id], serials...)
	return pool, nil
}
