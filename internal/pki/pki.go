// Package pki models the identity-management hierarchy of §IV.B: a
// Trusted Authority (TA) that enrolls vehicles, mints pseudonym-
// certificate pools with escrowed traceability, manages group membership
// for group-based authentication, and drives the revocation pipeline
// whose CRL growth experiment E5 measures.
//
// The TA is an offline/back-end entity: vehicles reach it at enrollment
// time (vehicle registration) and afterwards only through RSUs or the
// cellular uplink — the infrastructure-reliance property Fig. 2 and Fig. 5
// turn on.
package pki

import (
	"fmt"
	"io"
	"time"

	"vcloud/internal/cryptoprim"
)

// VehicleIdentity is a vehicle's real (legal) identity.
type VehicleIdentity string

// Enrollment is everything a vehicle walks away from registration with.
type Enrollment struct {
	Identity VehicleIdentity
	// LongTerm is the real-identity certificate (never sent on air in
	// privacy-preserving protocols).
	LongTerm cryptoprim.Certificate
	LongKey  cryptoprim.KeyPair
	// Pseudonyms is the pre-issued pseudonym pool.
	Pseudonyms *cryptoprim.PseudonymPool
	// Group is the credential for group-based authentication.
	Group cryptoprim.GroupCred
	// Chain is the one-time-ID chain for randomized authentication.
	Chain *cryptoprim.IDChain
}

// Config tunes the TA.
type Config struct {
	// PoolSize is the pseudonym batch size per vehicle. Default 20.
	PoolSize int
	// CertLifetime is the validity of issued certificates. Default 24 h
	// of virtual time.
	CertLifetime time.Duration
}

// TA is the trusted authority.
type TA struct {
	ca    *cryptoprim.CA
	group *cryptoprim.GroupManager
	crl   *cryptoprim.CRL
	cfg   Config
	rand  io.Reader

	// pseudonymOwner maps pseudonym serials to real identities — the
	// escrow that makes pseudonym privacy *conditional* (Fig. 5: "the
	// identity issuer can easily track a vehicle").
	pseudonymOwner map[cryptoprim.Serial]VehicleIdentity
	// vehicleSerials lists each vehicle's pseudonym serials for
	// revocation.
	vehicleSerials map[VehicleIdentity][]cryptoprim.Serial
	chainSeeds     map[VehicleIdentity][32]byte
	revokedVehicle map[VehicleIdentity]struct{}
	revVersion     uint64
}

// New creates a TA with a fresh root key drawn from rand.
func New(name string, rand io.Reader, cfg Config) (*TA, error) {
	if rand == nil {
		return nil, fmt.Errorf("pki: rand must not be nil")
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 20
	}
	if cfg.CertLifetime <= 0 {
		cfg.CertLifetime = 24 * time.Hour
	}
	ca, err := cryptoprim.NewCA(name, rand)
	if err != nil {
		return nil, err
	}
	gm, err := cryptoprim.NewGroupManager(name+"-group", rand)
	if err != nil {
		return nil, err
	}
	return &TA{
		ca:             ca,
		group:          gm,
		crl:            cryptoprim.NewCRL(4096),
		cfg:            cfg,
		rand:           rand,
		pseudonymOwner: make(map[cryptoprim.Serial]VehicleIdentity),
		vehicleSerials: make(map[VehicleIdentity][]cryptoprim.Serial),
		chainSeeds:     make(map[VehicleIdentity][32]byte),
		revokedVehicle: make(map[VehicleIdentity]struct{}),
	}, nil
}

// RootKey returns the TA verification key vehicles pin.
func (t *TA) RootKey() []byte { return t.ca.PublicKey() }

// GroupKey returns the group verification key.
func (t *TA) GroupKey() []byte { return t.group.PublicKey() }

// GroupManager exposes the group manager (for verifier-side revocation
// checks routed through the TA and for tracing).
func (t *TA) GroupManager() *cryptoprim.GroupManager { return t.group }

// CRL returns the live revocation list (verifiers hold a reference,
// modeling periodic CRL distribution).
func (t *TA) CRL() *cryptoprim.CRL { return t.crl }

// Enroll registers a vehicle: long-term certificate, pseudonym pool with
// escrowed mapping, group credential, and ID chain with escrowed seed.
func (t *TA) Enroll(id VehicleIdentity) (*Enrollment, error) {
	if id == "" {
		return nil, fmt.Errorf("pki: vehicle identity must not be empty")
	}
	if _, ok := t.vehicleSerials[id]; ok {
		return nil, fmt.Errorf("pki: vehicle %q already enrolled", id)
	}
	longKey, err := cryptoprim.GenerateKey(t.rand)
	if err != nil {
		return nil, err
	}
	longCert, err := t.ca.Issue([]byte(id), longKey.Public, t.cfg.CertLifetime)
	if err != nil {
		return nil, err
	}
	pool, serials, err := cryptoprim.IssuePseudonyms(t.ca, t.cfg.PoolSize, t.cfg.CertLifetime, t.rand)
	if err != nil {
		return nil, err
	}
	for _, s := range serials {
		t.pseudonymOwner[s] = id
	}
	t.vehicleSerials[id] = serials
	groupCred, err := t.group.Enroll(string(id), t.rand)
	if err != nil {
		return nil, err
	}
	chain, err := cryptoprim.NewIDChain(t.rand)
	if err != nil {
		return nil, err
	}
	t.chainSeeds[id] = chain.Seed()
	return &Enrollment{
		Identity:   id,
		LongTerm:   longCert,
		LongKey:    longKey,
		Pseudonyms: pool,
		Group:      groupCred,
		Chain:      chain,
	}, nil
}

// NumEnrolled returns the number of registered vehicles.
func (t *TA) NumEnrolled() int { return len(t.vehicleSerials) }

// RevokeVehicle revokes a vehicle: every one of its pseudonym serials
// joins the CRL (the pool-size multiplication that makes pseudonym CRLs
// huge), and its group membership is revoked.
func (t *TA) RevokeVehicle(id VehicleIdentity) error {
	serials, ok := t.vehicleSerials[id]
	if !ok {
		return fmt.Errorf("pki: vehicle %q not enrolled", id)
	}
	if _, done := t.revokedVehicle[id]; done {
		return nil
	}
	t.revokedVehicle[id] = struct{}{}
	t.revVersion++
	for _, s := range serials {
		t.crl.Add(s)
	}
	t.group.Revoke(string(id))
	return nil
}

// IsRevoked reports whether the vehicle has been revoked.
func (t *TA) IsRevoked(id VehicleIdentity) bool {
	_, ok := t.revokedVehicle[id]
	return ok
}

// RevocationVersion increments on every revocation, letting verifiers
// cache derived revocation material until it changes.
func (t *TA) RevocationVersion() uint64 { return t.revVersion }

// HybridRevocationTags derives the trapdoor revocation tags for hybrid
// authentication: the one-time chain identities (indices 0..horizon) of
// every revoked vehicle, computable only from the escrowed seeds. A
// verifier holding these tags rejects a revoked vehicle's one-time IDs
// with a constant-time set probe — no per-pseudonym CRL needed (the
// [31] design point).
func (t *TA) HybridRevocationTags(horizon uint64) map[[32]byte]struct{} {
	tags := make(map[[32]byte]struct{})
	for id := range t.revokedVehicle {
		seed, ok := t.chainSeeds[id]
		if !ok {
			continue
		}
		for k := uint64(0); k <= horizon; k++ {
			tags[cryptoprim.ChainIDAt(seed, k)] = struct{}{}
		}
	}
	return tags
}

// TracePseudonym reveals the owner of a pseudonym certificate — the
// conditional-privacy escape hatch available only to the authority
// (§V.A "the authority should be able to reveal vehicles' real
// identities").
func (t *TA) TracePseudonym(serial cryptoprim.Serial) (VehicleIdentity, bool) {
	id, ok := t.pseudonymOwner[serial]
	return id, ok
}

// TraceGroupSig opens a group signature to the member's real identity.
func (t *TA) TraceGroupSig(sig cryptoprim.GroupSig) (VehicleIdentity, bool) {
	id := t.group.Open(sig)
	if id == "" {
		return "", false
	}
	return VehicleIdentity(id), true
}

// TraceChainID identifies which enrolled vehicle produced a one-time
// chain identity by checking escrowed seeds (index bounded by maxIndex).
func (t *TA) TraceChainID(id [32]byte, maxIndex uint64) (VehicleIdentity, bool) {
	for veh, seed := range t.chainSeeds {
		for k := uint64(0); k <= maxIndex; k++ {
			if cryptoprim.VerifyChainID(seed, k, id) {
				return veh, true
			}
		}
	}
	return "", false
}
