// Package shardworld composes the geo-sharded simulation: a fleet of
// hash-driven vehicles (internal/mobility.ShardVehicle) beaconing over the
// deterministic counter-hash channel (internal/radio.ShardChannel), run on
// one sim.ShardedKernel with a shard-local spatial index per shard
// (internal/geo.ShardedIndex) and conservative lookahead synchronization.
//
// The world is built so that its sampled output is bit-for-bit identical
// at ANY shard count, by construction rather than by luck:
//
//   - Every random draw (spawn, turn, speed, reception) is a counter hash
//     keyed by (seed, entity, tick) — never a shared RNG stream — so no
//     draw order exists to perturb.
//   - Each tick T is split into four phases at lookahead L = T/4: move@t,
//     ghost/handoff apply@t+L, beacon@t+2L, deliver@t+3L. Every
//     cross-shard event travels exactly L ahead, meeting the conservative
//     contract with zero slack.
//   - Ghosts are pushed fresh every tick (positions as of move@t) with a
//     halo of radio range plus one step, so a border query over
//     locals+ghosts returns exactly what one global index would.
//   - Sampled rows contain only integer counters whose per-shard
//     subtotals sum exactly (no float accumulation order), taken at
//     t+3L+L/2 when every delivery of the tick has been applied.
//
// Handoff counts and cross-event totals are inherently shard-dependent
// and are reported as sharding telemetry, never in the comparable output.
package shardworld

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"time"

	"vcloud/internal/geo"
	"vcloud/internal/mobility"
	"vcloud/internal/radio"
	"vcloud/internal/sim"
)

// Hash draw domains for the churn schedule.
const (
	drawBirthGate uint64 = 0x11
	drawBirthTick uint64 = 0x13
	drawDeathGate uint64 = 0x17
	drawDeathTick uint64 = 0x19
)

// Outage suppresses all beacons transmitted from inside Rect during ticks
// [FromTick, ToTick). The decision reads only the sender's position and
// the tick, so it is shard-invariant.
type Outage struct {
	Rect     geo.Rect
	FromTick int
	ToTick   int
}

// Config parameterizes a sharded world run.
type Config struct {
	Seed   int64
	Shards int
	// Vehicles is the id universe size; with ChurnFrac > 0 some ids
	// arrive late or depart early.
	Vehicles int
	Ticks    int
	// TickEvery is the tick period T; the lookahead is T/4. It is rounded
	// down to a multiple of 4ns.
	TickEvery sim.Time
	// WorldSize is the square world edge length in meters.
	WorldSize          float64
	SpeedMin, SpeedMax float64
	Radio              radio.Params
	// DensityHalf is the sender neighbor count at which collision loss
	// reaches half its cap (see radio.ShardChannel).
	DensityHalf float64
	BeaconBytes int
	// SampleEvery emits a fleet sample row every that many ticks.
	SampleEvery int
	// ChurnFrac is the fraction of ids gated into late arrival and the
	// fraction gated into early departure.
	ChurnFrac float64
	Outage    *Outage
}

// DefaultConfig returns a medium-sized scenario: a 3 km² world with 160
// vehicles beaconing every 200 ms tick.
func DefaultConfig(seed int64, shards int) Config {
	return Config{
		Seed:        seed,
		Shards:      shards,
		Vehicles:    160,
		Ticks:       96,
		TickEvery:   200 * time.Millisecond,
		WorldSize:   3000,
		SpeedMin:    5,
		SpeedMax:    30,
		Radio:       radio.DefaultParams(),
		DensityHalf: 20,
		BeaconBytes: 300,
		SampleEvery: 16,
	}
}

func (cfg *Config) normalize() error {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Vehicles < 1 {
		return fmt.Errorf("shardworld: need at least one vehicle, got %d", cfg.Vehicles)
	}
	if cfg.Ticks < 2 {
		return fmt.Errorf("shardworld: need at least two ticks, got %d", cfg.Ticks)
	}
	if cfg.TickEvery < 4 {
		return fmt.Errorf("shardworld: tick period too small: %v", cfg.TickEvery)
	}
	cfg.TickEvery -= cfg.TickEvery % 4
	if cfg.WorldSize <= 0 {
		return fmt.Errorf("shardworld: world size must be positive, got %v", cfg.WorldSize)
	}
	if cfg.SpeedMin < 0 || cfg.SpeedMax < cfg.SpeedMin {
		return fmt.Errorf("shardworld: bad speed range [%v, %v]", cfg.SpeedMin, cfg.SpeedMax)
	}
	if cfg.BeaconBytes < 1 {
		cfg.BeaconBytes = 1
	}
	if cfg.SampleEvery < 1 {
		cfg.SampleEvery = 1
	}
	if cfg.ChurnFrac < 0 || cfg.ChurnFrac > 1 {
		return fmt.Errorf("shardworld: churn fraction must be in [0, 1], got %v", cfg.ChurnFrac)
	}
	if cfg.DensityHalf <= 0 {
		cfg.DensityHalf = 20
	}
	return nil
}

// SampleRow is one fleet-wide sample: integer counters only, so per-shard
// subtotals sum exactly to the serial values. Beacons through Suppressed
// are cumulative since tick zero.
type SampleRow struct {
	Tick       int
	Active     int64
	Beacons    uint64
	Delivered  uint64
	LostRange  uint64
	LostLoad   uint64
	Applied    int64 // deliveries applied at receivers
	Suppressed uint64
	OdoMM      int64 // fleet odometer incl. departed vehicles
}

func (r SampleRow) add(o SampleRow) SampleRow {
	r.Active += o.Active
	r.Beacons += o.Beacons
	r.Delivered += o.Delivered
	r.LostRange += o.LostRange
	r.LostLoad += o.LostLoad
	r.Applied += o.Applied
	r.Suppressed += o.Suppressed
	r.OdoMM += o.OdoMM
	return r
}

// Result is the outcome of one run. Samples, Radio and Checksum are
// shard-invariant model output; the remaining fields are sharding and
// performance telemetry.
type Result struct {
	Seed     int64
	Shards   int
	Vehicles int
	Ticks    int

	Samples  []SampleRow
	Radio    radio.Stats
	Checksum uint64

	Handoffs    int64
	CrossEvents uint64
	Processed   uint64
	Windows     uint64
	Wall        time.Duration
	BusyWall    time.Duration
	CritPath    time.Duration
}

// Comparable renders the shard-invariant model output: identical strings
// at any shard count is the determinism contract, enforced by
// TestShardedMatchesSerial and experiment E17.
func (r *Result) Comparable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "shardworld seed=%d vehicles=%d ticks=%d\n", r.Seed, r.Vehicles, r.Ticks)
	for _, s := range r.Samples {
		fmt.Fprintf(&b, "t=%04d active=%d beacons=%d delivered=%d applied=%d lostRange=%d lostLoad=%d suppressed=%d odoMM=%d\n",
			s.Tick, s.Active, s.Beacons, s.Delivered, s.Applied, s.LostRange, s.LostLoad, s.Suppressed, s.OdoMM)
	}
	fmt.Fprintf(&b, "radio sent=%d delivered=%d lostRange=%d lostLoad=%d bytes=%d\n",
		r.Radio.Sent, r.Radio.Delivered, r.Radio.LostRange, r.Radio.LostLoad, r.Radio.BytesOnAir)
	return b.String()
}

// EventsPerSec returns processed kernel events per wall second.
func (r *Result) EventsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Processed) / r.Wall.Seconds()
}

// CritPathSpeedup returns total busy work over critical-path work: the
// parallel speedup the shard decomposition exposes, which wall clocks
// realize when one core per shard is available.
func (r *Result) CritPathSpeedup() float64 {
	if r.CritPath <= 0 {
		return 0
	}
	return float64(r.BusyWall) / float64(r.CritPath)
}

// ChurnSchedule returns the tick each vehicle id becomes active and the
// tick it departs (math.MaxInt32 for never), as pure functions of the
// config. Exposed so invariant checks can recompute the expected fleet.
func ChurnSchedule(cfg Config) (birth, death []int32, err error) {
	if err := cfg.normalize(); err != nil {
		return nil, nil, err
	}
	sched := churnSchedule(&cfg)
	return sched[:cfg.Vehicles], sched[cfg.Vehicles:], nil
}

func churnSchedule(cfg *Config) []int32 {
	seed := uint64(sim.SubSeed(cfg.Seed, "shardworld/churn"))
	sched := make([]int32, 2*cfg.Vehicles)
	birth, death := sched[:cfg.Vehicles], sched[cfg.Vehicles:]
	half := cfg.Ticks / 2
	for i := range birth {
		u := uint64(i)
		death[i] = math.MaxInt32
		if cfg.ChurnFrac <= 0 {
			continue
		}
		// Births land in [1, half); deaths in [half, ticks), so every
		// churned id still lives a contiguous, non-empty interval.
		if sim.HashUnit(seed, drawBirthGate, u) < cfg.ChurnFrac {
			birth[i] = 1 + int32(sim.HashUnit(seed, drawBirthTick, u)*float64(half-1))
		}
		if sim.HashUnit(seed, drawDeathGate, u) < cfg.ChurnFrac {
			death[i] = int32(half) + int32(sim.HashUnit(seed, drawDeathTick, u)*float64(cfg.Ticks-half))
		}
	}
	return sched
}

// world wires the shards together for one run.
type world struct {
	cfg    Config
	bounds geo.Rect
	smap   *geo.ShardMap
	sk     *sim.ShardedKernel
	shards []*wshard
	// birth/death are read-only during the run (shared across workers).
	birth, death []int32
	mobSeed      uint64
	halo         float64
	dt           float64 // tick period in seconds
	lookahead    sim.Time
}

// wshard is one shard's model state, owned by that shard's worker during
// windows and touched by others only through cross-shard events.
type wshard struct {
	w       *world
	idx     int
	k       *sim.Kernel
	index   *geo.ShardedIndex
	channel *radio.ShardChannel
	locals  map[int32]*mobility.ShardVehicle
	// arrivals maps tick -> ids spawning on this shard, precomputed at
	// setup from the churn schedule and the pure spawn position.
	arrivals map[int][]int32

	retiredOdo int64
	applied    int64
	hops       int64
	suppressed uint64
	samples    []SampleRow

	ids  []int32 // sorted-local-ids scratch
	near []int
	nids []int32
	npos []geo.Point
}

type ghostMsg struct {
	s   *wshard
	id  int32
	pos geo.Point
}

func applyGhost(a any) {
	m := a.(ghostMsg)
	m.s.index.UpdateGhost(m.id, m.pos)
}

func applyDemote(a any) {
	m := a.(ghostMsg)
	m.s.index.RemoveLocal(m.id)
	m.s.index.UpdateGhost(m.id, m.pos)
}

type handoffMsg struct {
	s *wshard
	v mobility.ShardVehicle
}

func applyHandoff(a any) {
	m := a.(handoffMsg)
	v := m.v
	m.s.locals[v.ID] = &v
	m.s.index.UpdateLocal(v.ID, v.Pos)
}

func applyDelivery(a any) { a.(*wshard).applied++ }

func clearGhostsFn(a any) { a.(*wshard).index.ClearGhosts() }

// Run executes the scenario and returns its result.
func Run(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	w := &world{
		cfg:       cfg,
		bounds:    geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: cfg.WorldSize, Y: cfg.WorldSize}),
		mobSeed:   uint64(sim.SubSeed(cfg.Seed, "shardworld/mob")),
		dt:        cfg.TickEvery.Seconds(),
		lookahead: cfg.TickEvery / 4,
	}
	w.halo = cfg.Radio.RangeMax + mobility.MaxStep(cfg.SpeedMax, w.dt)

	nx, ny := geo.FactorShards(cfg.Shards)
	var err error
	if w.smap, err = geo.NewShardMap(w.bounds, nx, ny); err != nil {
		return nil, err
	}
	if w.sk, err = sim.NewShardedKernel(cfg.Seed, cfg.Shards, w.lookahead); err != nil {
		return nil, err
	}
	defer w.sk.Close()

	radioSeed := uint64(sim.SubSeed(cfg.Seed, "shardworld/radio"))
	w.shards = make([]*wshard, cfg.Shards)
	for i := range w.shards {
		s := &wshard{
			w:        w,
			idx:      i,
			k:        w.sk.Shard(i),
			locals:   make(map[int32]*mobility.ShardVehicle),
			arrivals: make(map[int][]int32),
		}
		// Every shard's channel carries the same seed: reception verdicts
		// are pure in (tick, from, to), so the deciding shard is
		// irrelevant by construction.
		if s.channel, err = radio.NewShardChannel(radioSeed, cfg.Radio, cfg.DensityHalf); err != nil {
			return nil, err
		}
		if s.index, err = geo.NewShardedIndex(w.bounds, cfg.Radio.RangeMax); err != nil {
			return nil, err
		}
		w.shards[i] = s
	}

	sched := churnSchedule(&cfg)
	w.birth, w.death = sched[:cfg.Vehicles], sched[cfg.Vehicles:]
	for i := 0; i < cfg.Vehicles; i++ {
		id := int32(i)
		v := mobility.SpawnShardVehicle(w.mobSeed, id, w.bounds, cfg.SpeedMin, cfg.SpeedMax)
		owner := w.shards[w.smap.ShardOf(v.Pos)]
		if b := w.birth[i]; b > 0 {
			owner.arrivals[int(b)] = append(owner.arrivals[int(b)], id)
		} else {
			owner.locals[id] = &v
			owner.index.UpdateLocal(id, v.Pos)
		}
	}

	for _, s := range w.shards {
		s := s
		s.k.At(0, func() { s.movePhase(0) })
	}
	if err := w.sk.Run(sim.Time(cfg.Ticks) * cfg.TickEvery); err != nil {
		return nil, err
	}
	return w.collect()
}

// sortedLocals rebuilds the shard's local id list in ascending order; all
// per-tick iteration follows it so map order never reaches the model.
func (s *wshard) sortedLocals() []int32 {
	s.ids = s.ids[:0]
	for id := range s.locals {
		s.ids = append(s.ids, id)
	}
	sort.Slice(s.ids, func(i, j int) bool { return s.ids[i] < s.ids[j] })
	return s.ids
}

// movePhase is phase one of tick: arrivals, departures, one Step per
// local vehicle, handoffs for border crossers, and fresh ghost pushes to
// every halo shard — all effective at t+L.
func (s *wshard) movePhase(tick int) {
	w := s.w
	cfg := &w.cfg
	t := sim.Time(tick) * cfg.TickEvery
	L := w.lookahead

	// Scheduled first so it carries the lowest sequence number at t+L:
	// last tick's ghosts vanish before this tick's pushes and handoffs
	// (scheduled below and at the barrier) apply.
	s.k.AtArg(t+L, clearGhostsFn, s)

	for _, id := range s.arrivals[tick] {
		v := mobility.SpawnShardVehicle(w.mobSeed, id, w.bounds, cfg.SpeedMin, cfg.SpeedMax)
		s.locals[id] = &v
	}

	for _, id := range s.sortedLocals() {
		v := s.locals[id]
		if w.death[id] == int32(tick) {
			s.retiredOdo += v.OdoMM
			delete(s.locals, id)
			s.index.RemoveLocal(id)
			continue
		}
		v.Step(w.mobSeed, uint64(tick), w.bounds, w.dt, cfg.SpeedMin, cfg.SpeedMax)
		dst := w.smap.ShardOf(v.Pos)
		s.near = w.smap.ShardsNear(s.near[:0], v.Pos, w.halo)
		if dst != s.idx {
			// Border crossing: the struct copy travels one lookahead
			// ahead; this shard keeps the fresh position as a ghost so its
			// remaining locals still see the vehicle this tick.
			s.hops++
			cp := *v
			cp.Hops++
			delete(s.locals, id)
			s.k.AtArg(t+L, applyDemote, ghostMsg{s: s, id: id, pos: v.Pos})
			w.sk.Inject(s.idx, dst, t+L, applyHandoff, handoffMsg{s: w.shards[dst], v: cp})
		} else {
			s.index.UpdateLocal(id, v.Pos)
		}
		for _, g := range s.near {
			if g != s.idx && g != dst {
				w.sk.Inject(s.idx, g, t+L, applyGhost, ghostMsg{s: w.shards[g], id: id, pos: v.Pos})
			}
		}
	}

	s.k.At(t+2*L, func() { s.beaconPhase(tick) })
	if (tick+1)%cfg.SampleEvery == 0 || tick == cfg.Ticks-1 {
		s.k.At(t+3*L+L/2, func() { s.sample(tick) })
	}
	if tick+1 < cfg.Ticks {
		s.k.At(t+cfg.TickEvery, func() { s.movePhase(tick + 1) })
	}
}

// beaconPhase evaluates every local sender's broadcast against the
// halo-complete neighbor set. Each (sender, receiver) reception is judged
// exactly once fleet-wide — by the sender's owner — with a pure verdict,
// and successful deliveries land at t+3L on the receiver's owner.
func (s *wshard) beaconPhase(tick int) {
	w := s.w
	cfg := &w.cfg
	t := sim.Time(tick) * cfg.TickEvery
	L := w.lookahead
	out := cfg.Outage

	for _, id := range s.sortedLocals() {
		v := s.locals[id]
		if out != nil && tick >= out.FromTick && tick < out.ToTick && out.Rect.Contains(v.Pos) {
			s.suppressed++
			continue
		}
		s.channel.NoteSent(cfg.BeaconBytes)
		s.nids, s.npos = s.index.WithinRangePos(s.nids[:0], s.npos[:0], v.Pos, cfg.Radio.RangeMax, id)
		density := len(s.nids)
		for i, nid := range s.nids {
			d := v.Pos.Dist(s.npos[i])
			if !s.channel.Receive(uint64(tick), radio.NodeID(id), radio.NodeID(nid), d, density) {
				continue
			}
			if rs := w.smap.ShardOf(s.npos[i]); rs == s.idx {
				s.k.AtArg(t+3*L, applyDelivery, s)
			} else {
				w.sk.Inject(s.idx, rs, t+3*L, applyDelivery, w.shards[rs])
			}
		}
	}
}

// sample snapshots this shard's counters; fleet rows are the exact sums
// of these across shards. It runs at t+3L+L/2: after every delivery of
// the tick, before anything of the next.
func (s *wshard) sample(tick int) {
	odo := s.retiredOdo
	for _, v := range s.locals {
		odo += v.OdoMM
	}
	st := s.channel.Stats()
	s.samples = append(s.samples, SampleRow{
		Tick:       tick,
		Active:     int64(len(s.locals)),
		Beacons:    st.Sent,
		Delivered:  st.Delivered,
		LostRange:  st.LostRange,
		LostLoad:   st.LostLoad,
		Applied:    s.applied,
		Suppressed: s.suppressed,
		OdoMM:      odo,
	})
}

// collect sums per-shard state into the fleet result and verifies the
// run's conservation invariants.
func (w *world) collect() (*Result, error) {
	cfg := &w.cfg
	r := &Result{
		Seed:        cfg.Seed,
		Shards:      cfg.Shards,
		Vehicles:    cfg.Vehicles,
		Ticks:       cfg.Ticks,
		CrossEvents: w.sk.CrossEvents(),
		Processed:   w.sk.Processed(),
		Windows:     w.sk.Windows(),
		Wall:        w.sk.WallTime(),
		BusyWall:    w.sk.BusyWall(),
		CritPath:    w.sk.CritPathWall(),
	}
	nRows := len(w.shards[0].samples)
	for _, s := range w.shards {
		if len(s.samples) != nRows {
			return nil, fmt.Errorf("shardworld: shard %d has %d sample rows, shard 0 has %d", s.idx, len(s.samples), nRows)
		}
		r.Radio = r.Radio.Add(s.channel.Stats())
		r.Handoffs += s.hops
	}
	r.Samples = make([]SampleRow, nRows)
	for i := range r.Samples {
		row := w.shards[0].samples[i]
		for _, s := range w.shards[1:] {
			row = row.add(s.samples[i])
		}
		r.Samples[i] = row
		// Conservation: the active fleet must match the churn schedule
		// exactly — a lost or duplicated handoff shows up here.
		want := int64(0)
		for id := 0; id < cfg.Vehicles; id++ {
			if int(w.birth[id]) <= row.Tick && row.Tick < int(w.death[id]) {
				want++
			}
		}
		if row.Active != want {
			return nil, fmt.Errorf("shardworld: tick %d has %d active vehicles, churn schedule says %d", row.Tick, row.Active, want)
		}
		// Every sender-side verdict must have been applied receiver-side.
		if row.Applied != int64(row.Delivered) {
			return nil, fmt.Errorf("shardworld: tick %d applied %d deliveries, channel delivered %d", row.Tick, row.Applied, row.Delivered)
		}
	}
	h := fnv.New64a()
	h.Write([]byte(r.Comparable()))
	r.Checksum = h.Sum64()
	return r, nil
}
