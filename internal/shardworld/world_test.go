package shardworld

import (
	"math"
	"strings"
	"testing"
	"time"

	"vcloud/internal/geo"
)

func testConfig(seed int64, shards int) Config {
	cfg := DefaultConfig(seed, shards)
	cfg.Vehicles = 120
	cfg.Ticks = 48
	cfg.SampleEvery = 12
	cfg.WorldSize = 2400
	return cfg
}

// TestShardedMatchesSerial is the tentpole contract: the world's model
// output is byte-for-byte identical at 1, 2, 4 and 8 shards, including
// under churn and a beacon outage.
func TestShardedMatchesSerial(t *testing.T) {
	variants := map[string]func(*Config){
		"plain": func(*Config) {},
		"churn": func(c *Config) { c.ChurnFrac = 0.3 },
		"churn+outage": func(c *Config) {
			c.ChurnFrac = 0.25
			c.Outage = &Outage{
				Rect:     geo.NewRect(geo.Point{X: 600, Y: 600}, geo.Point{X: 1800, Y: 1800}),
				FromTick: 10,
				ToTick:   30,
			}
		},
	}
	for name, mutate := range variants {
		t.Run(name, func(t *testing.T) {
			base := testConfig(11, 1)
			mutate(&base)
			serial, err := Run(base)
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			if serial.Radio.Delivered == 0 {
				t.Fatal("serial run delivered nothing; scenario too sparse to prove anything")
			}
			want := serial.Comparable()
			for _, shards := range []int{2, 4, 8} {
				cfg := testConfig(11, shards)
				mutate(&cfg)
				got, err := Run(cfg)
				if err != nil {
					t.Fatalf("%d shards: %v", shards, err)
				}
				if got.Comparable() != want {
					t.Fatalf("%d shards diverged from serial:\n--- serial ---\n%s--- sharded ---\n%s",
						shards, want, got.Comparable())
				}
				if got.Checksum != serial.Checksum {
					t.Fatalf("%d shards: checksum %x != serial %x", shards, got.Checksum, serial.Checksum)
				}
				if shards > 1 && got.CrossEvents == 0 {
					t.Fatalf("%d shards exchanged no cross events; borders never exercised", shards)
				}
			}
		})
	}
}

// TestMidFlightHandoff checks vehicles actually migrate between shards at
// boundaries and that the handoff bookkeeping conserves the fleet (the
// conservation invariant inside Run would fail otherwise).
func TestMidFlightHandoff(t *testing.T) {
	cfg := testConfig(5, 4)
	cfg.Ticks = 80
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Handoffs == 0 {
		t.Fatal("no handoffs in 80 ticks over 4 shards; border crossing path untested")
	}
	last := res.Samples[len(res.Samples)-1]
	if last.Active != int64(cfg.Vehicles) {
		t.Fatalf("fleet shrank to %d of %d after %d handoffs", last.Active, cfg.Vehicles, res.Handoffs)
	}
	// Serial has no borders: handoffs only exist when sharded.
	cfg1 := cfg
	cfg1.Shards = 1
	res1, err := Run(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Handoffs != 0 {
		t.Fatalf("one-shard run reported %d handoffs", res1.Handoffs)
	}
}

// TestReproducible checks the same config gives identical output twice
// (no hidden wall-clock or map-order leakage) and that the seed matters.
func TestReproducible(t *testing.T) {
	cfg := testConfig(21, 4)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Comparable() != b.Comparable() {
		t.Fatal("identical configs produced different output")
	}
	cfg.Seed = 22
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Comparable() == a.Comparable() {
		t.Fatal("seed change did not affect output")
	}
}

// TestChurnSchedule checks the schedule is well-formed: churned births
// stay in the first half, deaths in the second, intervals never empty.
func TestChurnSchedule(t *testing.T) {
	cfg := testConfig(9, 1)
	cfg.ChurnFrac = 0.5
	birth, death, err := ChurnSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	late, early := 0, 0
	for i := range birth {
		if birth[i] < 0 || int(birth[i]) >= cfg.Ticks/2 {
			t.Fatalf("id %d birth %d outside [0, %d)", i, birth[i], cfg.Ticks/2)
		}
		if birth[i] > 0 {
			late++
		}
		if death[i] != math.MaxInt32 {
			early++
			if int(death[i]) < cfg.Ticks/2 || int(death[i]) >= cfg.Ticks {
				t.Fatalf("id %d death %d outside [%d, %d)", i, death[i], cfg.Ticks/2, cfg.Ticks)
			}
		}
		if birth[i] >= death[i] {
			t.Fatalf("id %d has empty lifetime [%d, %d)", i, birth[i], death[i])
		}
	}
	if late == 0 || early == 0 {
		t.Fatalf("churn at 0.5 produced %d late arrivals, %d departures", late, early)
	}
}

// TestOutageSuppresses checks the outage actually removes beacons and is
// reflected in the comparable output.
func TestOutageSuppresses(t *testing.T) {
	cfg := testConfig(13, 2)
	cfg.Outage = &Outage{
		Rect:     geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 2400, Y: 2400}),
		FromTick: 0,
		ToTick:   cfg.Ticks,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Radio.Sent != 0 {
		t.Fatalf("world-wide outage still sent %d beacons", res.Radio.Sent)
	}
	last := res.Samples[len(res.Samples)-1]
	if last.Suppressed == 0 {
		t.Fatal("no suppressions counted")
	}
	if !strings.Contains(res.Comparable(), "suppressed=") {
		t.Fatal("suppression missing from comparable output")
	}
}

// TestConfigValidation checks the error paths.
func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Vehicles = 0 },
		func(c *Config) { c.Ticks = 1 },
		func(c *Config) { c.WorldSize = 0 },
		func(c *Config) { c.SpeedMax = c.SpeedMin - 1 },
		func(c *Config) { c.ChurnFrac = 1.5 },
		func(c *Config) { c.TickEvery = time.Duration(2) },
	}
	for i, mutate := range bad {
		cfg := testConfig(1, 1)
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
