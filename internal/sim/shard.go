// Sharded kernel: one scenario spread over every core.
//
// A ShardedKernel runs N child kernels — one per geographic shard — in
// lockstep windows of a fixed conservative lookahead L. Within a window
// [W, W+L) every shard dispatches its own events with no coordination at
// all; the model contract is that any event one shard schedules for
// another carries a delay of at least L, so nothing a neighbor does inside
// the current window can possibly matter before the window ends (classic
// conservative PDES: the lookahead is derived from the model's minimum
// cross-shard latency, e.g. radio range / max vehicle speed phase gaps in
// internal/shardworld).
//
// At the window barrier the coordinator drains every shard's outbox of
// cross-shard events and injects them into the destination kernels in one
// fixed merge order — (time, source shard, per-source sequence) — so the
// destination's (time, seq) dispatch order is a pure function of the model,
// never of goroutine timing. Runs are therefore bit-for-bit reproducible at
// any shard count for models whose semantics are shard-invariant (see
// internal/shardworld for the construction).
//
// The shard workers are the one sanctioned goroutine site inside the
// kernel layer, mirroring experiments.forEachPar one level up: each worker
// owns its shard's kernel exclusively during a window, all shared state is
// touched only by the coordinator between windows, and the start/done
// channels provide the happens-before edges. With one shard no goroutine
// is ever spawned and the coordinator degenerates to a windowed serial run.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Mix64 is the SplitMix64 finalizer: a cheap, high-quality bijective
// mixer. Shard-invariant models draw their "randomness" from counter
// hashes built on it — a draw keyed by (entity, tick) rather than pulled
// from a shared stream is the same no matter which shard, window or
// goroutine evaluates it.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Hash folds the values into one 64-bit digest of the seeded chain. The
// chain is order-dependent, so Hash(s, a, b) and Hash(s, b, a) are
// decorrelated.
func Hash(seed uint64, vals ...uint64) uint64 {
	h := Mix64(seed ^ 0x9e3779b97f4a7c15)
	for _, v := range vals {
		h = Mix64(h ^ v)
	}
	return h
}

// HashUnit maps the digest of (seed, vals...) onto [0, 1) with 53 bits of
// precision — the counter-based replacement for rand.Float64 in
// shard-invariant model code.
func HashUnit(seed uint64, vals ...uint64) float64 {
	return float64(Hash(seed, vals...)>>11) / (1 << 53)
}

// crossEvent is one cross-shard event parked in a source shard's outbox
// until the next barrier.
type crossEvent struct {
	at  Time
	src int
	dst int
	seq uint64 // per-source order of emission within the window
	fn  func(any)
	arg any
}

// workerDone reports one shard's window completion to the coordinator.
type workerDone struct {
	idx  int
	busy time.Duration
	err  error
}

// ShardedKernel coordinates N shard kernels under conservative-lookahead
// barrier synchronization. It is not safe for concurrent use by callers;
// like Kernel, all driving happens from one goroutine (the workers it owns
// internally are invisible to model code).
type ShardedKernel struct {
	seed      int64
	lookahead Time
	shards    []*Kernel
	now       Time

	// windowEnd is the exclusive end of the window currently executing;
	// Inject checks cross events against it. It is written only between
	// windows, so worker reads during a window are race-free.
	windowEnd Time

	// outbox[src] collects cross events emitted by shard src during the
	// current window; each worker appends only to its own slot.
	outbox [][]crossEvent
	merged []crossEvent // barrier scratch for the global merge sort

	// Persistent workers, spawned lazily on the first multi-shard window.
	started bool
	closed  bool
	start   []chan Time
	done    chan workerDone

	// Telemetry, accumulated by the coordinator between windows.
	wall       time.Duration // coordinator wall time inside Run
	busyWall   time.Duration // sum of per-shard dispatch time
	critPath   time.Duration // sum over windows of the slowest shard's dispatch time
	windows    uint64
	crossSent  uint64
	windowBusy []time.Duration // per-window scratch, indexed by shard
}

// NewShardedKernel creates a coordinator over n shard kernels. Shard i's
// kernel is seeded with SubSeed(seed, "shard/i"), so per-shard RNG streams
// are decorrelated but stable; shard-invariant models must nevertheless
// draw output-affecting randomness from counter hashes (Hash/HashUnit),
// not from these streams. lookahead is the conservative window length: no
// cross-shard event may be scheduled closer than lookahead in the future.
func NewShardedKernel(seed int64, n int, lookahead Time) (*ShardedKernel, error) {
	if n < 1 {
		return nil, fmt.Errorf("sim: shard count must be at least 1, got %d", n)
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("sim: lookahead must be positive, got %v", lookahead)
	}
	sk := &ShardedKernel{
		seed:       seed,
		lookahead:  lookahead,
		shards:     make([]*Kernel, n),
		outbox:     make([][]crossEvent, n),
		windowBusy: make([]time.Duration, n),
	}
	for i := range sk.shards {
		sk.shards[i] = NewKernel(SubSeed(seed, fmt.Sprintf("shard/%d", i)))
	}
	return sk, nil
}

// NumShards returns the shard count.
func (sk *ShardedKernel) NumShards() int { return len(sk.shards) }

// Shard returns shard i's kernel. Model code running on shard i schedules
// its local events here; scheduling on another shard's kernel from inside
// a window is a data race — cross-shard work must go through Inject.
func (sk *ShardedKernel) Shard(i int) *Kernel { return sk.shards[i] }

// Seed returns the coordinator seed.
func (sk *ShardedKernel) Seed() int64 { return sk.seed }

// Lookahead returns the conservative window length.
func (sk *ShardedKernel) Lookahead() Time { return sk.lookahead }

// Now returns the coordinator's virtual time: the start of the next
// unprocessed window (every shard has dispatched all events before it).
func (sk *ShardedKernel) Now() Time { return sk.now }

// Processed returns the total number of events dispatched across shards.
func (sk *ShardedKernel) Processed() uint64 {
	var n uint64
	for _, k := range sk.shards {
		n += k.Processed()
	}
	return n
}

// Pending returns the total number of scheduled events across shards,
// excluding cross events parked in outboxes.
func (sk *ShardedKernel) Pending() int {
	n := 0
	for _, k := range sk.shards {
		n += k.Pending()
	}
	return n
}

// WallTime returns the real time spent inside Run, barriers included.
func (sk *ShardedKernel) WallTime() time.Duration { return sk.wall }

// BusyWall returns the summed per-shard dispatch time — the work a serial
// kernel would have done alone.
func (sk *ShardedKernel) BusyWall() time.Duration { return sk.busyWall }

// CritPathWall returns the parallel critical path: the sum over windows of
// the slowest shard's dispatch time. On a machine with at least NumShards
// free cores, Run's dispatch time converges to this; BusyWall/CritPathWall
// is the speedup the shard decomposition exposes independent of how many
// cores the current host actually has.
func (sk *ShardedKernel) CritPathWall() time.Duration { return sk.critPath }

// Windows returns how many barrier-synchronized windows have executed.
func (sk *ShardedKernel) Windows() uint64 { return sk.windows }

// CrossEvents returns how many cross-shard events have been merged.
func (sk *ShardedKernel) CrossEvents() uint64 { return sk.crossSent }

// Throughput returns aggregate events per wall-clock second.
func (sk *ShardedKernel) Throughput() float64 {
	if sk.wall <= 0 {
		return 0
	}
	return float64(sk.Processed()) / sk.wall.Seconds()
}

// Inject schedules a cross-shard event: fn(arg) runs on shard dst at
// virtual time at. The event is parked in shard src's outbox and merged at
// the next barrier in (time, source shard, sequence) order, so injection
// order — and therefore the destination's dispatch order — is independent
// of goroutine timing. Inject panics if the event violates the
// conservative contract by landing before the current window ends: that is
// a model bug (its cross-shard latency is shorter than the lookahead it
// declared), and proceeding would silently break determinism.
func (sk *ShardedKernel) Inject(src, dst int, at Time, fn func(any), arg any) {
	if src < 0 || src >= len(sk.shards) || dst < 0 || dst >= len(sk.shards) {
		panic(fmt.Sprintf("sim: Inject shard out of range: src=%d dst=%d of %d", src, dst, len(sk.shards)))
	}
	if fn == nil {
		panic("sim: Inject with nil fn")
	}
	if at < sk.windowEnd {
		panic(fmt.Sprintf("sim: conservative lookahead violated: cross event at %v lands inside the current window (ends %v); increase the model's cross-shard latency or shrink the lookahead", at, sk.windowEnd))
	}
	box := sk.outbox[src]
	sk.outbox[src] = append(box, crossEvent{at: at, src: src, dst: dst, seq: uint64(len(box)), fn: fn, arg: arg})
}

// mergeCross drains every outbox and schedules the events on their
// destination kernels in the fixed (time, source shard, sequence) order.
func (sk *ShardedKernel) mergeCross() {
	sk.merged = sk.merged[:0]
	for src := range sk.outbox {
		sk.merged = append(sk.merged, sk.outbox[src]...)
		// Zero the drained slots so recycled outbox capacity never pins
		// model state for the GC.
		box := sk.outbox[src]
		for i := range box {
			box[i].fn = nil
			box[i].arg = nil
		}
		sk.outbox[src] = box[:0]
	}
	if len(sk.merged) == 0 {
		return
	}
	sort.Slice(sk.merged, func(i, j int) bool {
		a, b := sk.merged[i], sk.merged[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for i := range sk.merged {
		ce := &sk.merged[i]
		sk.shards[ce.dst].AtArg(ce.at, ce.fn, ce.arg)
		ce.fn = nil
		ce.arg = nil
	}
	sk.crossSent += uint64(len(sk.merged))
}

// earliest returns the minimum next-event time across shards.
func (sk *ShardedKernel) earliest() (Time, bool) {
	var best Time
	ok := false
	for _, k := range sk.shards {
		if t, has := k.NextEventTime(); has && (!ok || t < best) {
			best, ok = t, true
		}
	}
	return best, ok
}

// startWorkers spawns the persistent shard workers. They are the sanctioned
// goroutine site of the kernel layer: each owns one shard's kernel
// exclusively during a window and communicates only over channels.
func (sk *ShardedKernel) startWorkers() {
	sk.start = make([]chan Time, len(sk.shards))
	sk.done = make(chan workerDone, len(sk.shards))
	for i := range sk.shards {
		sk.start[i] = make(chan Time)
		//vcloudlint:allow nogoroutine shard workers are the sanctioned parallel site: one worker owns one shard kernel per window, barriers synchronize via channels
		go sk.worker(i)
	}
	sk.started = true
}

// worker runs one shard's windows as the coordinator releases them. Busy
// time is taken from the kernel's own WallTime accumulator (maintained
// inside RunBefore), so the worker itself never reads the wall clock.
func (sk *ShardedKernel) worker(i int) {
	k := sk.shards[i]
	for we := range sk.start[i] {
		w0 := k.WallTime()
		err := k.RunBefore(we)
		sk.done <- workerDone{idx: i, busy: k.WallTime() - w0, err: err}
	}
}

// runWindow executes one window on every shard and folds the per-shard
// busy times into the telemetry. Errors are selected by lowest shard index
// so the returned error is deterministic.
func (sk *ShardedKernel) runWindow(we Time) error {
	n := len(sk.shards)
	if n == 1 {
		k := sk.shards[0]
		w0 := k.WallTime()
		err := k.RunBefore(we)
		busy := k.WallTime() - w0
		sk.busyWall += busy
		sk.critPath += busy
		sk.windows++
		return err
	}
	if !sk.started {
		sk.startWorkers()
	}
	for i := range sk.start {
		sk.start[i] <- we
	}
	var firstErr error
	firstIdx := n
	var maxBusy time.Duration
	for i := 0; i < n; i++ {
		d := <-sk.done
		sk.windowBusy[d.idx] = d.busy
		sk.busyWall += d.busy
		if d.busy > maxBusy {
			maxBusy = d.busy
		}
		if d.err != nil && d.idx < firstIdx {
			firstErr, firstIdx = d.err, d.idx
		}
	}
	sk.critPath += maxBusy
	sk.windows++
	return firstErr
}

// ErrClosed is returned by Run after Close has torn the workers down.
var ErrClosed = errors.New("sim: sharded kernel closed")

// Run dispatches events window by window until every shard's queue (and
// every outbox) is empty or the horizon is reached. Horizon semantics
// match Kernel.Run: a positive horizon is inclusive, and the clocks are
// left at the horizon when it cuts the run short; zero or negative means
// "run until drained".
func (sk *ShardedKernel) Run(horizon Time) error {
	if sk.closed {
		return ErrClosed
	}
	start := time.Now()
	defer func() { sk.wall += time.Since(start) }()
	// Merge any setup-time injections so they count as pending work.
	sk.mergeCross()
	for {
		next, ok := sk.earliest()
		if !ok || (horizon > 0 && next > horizon) {
			if horizon > 0 {
				sk.advanceTo(horizon)
			}
			return nil
		}
		ws := next
		if ws < sk.now {
			ws = sk.now
		}
		we := ws + sk.lookahead
		if horizon > 0 && we > horizon+1 {
			// Final window: include events at exactly the horizon. Shrinking
			// a window is always conservative-safe.
			we = horizon + 1
		}
		sk.windowEnd = we
		err := sk.runWindow(we)
		sk.mergeCross()
		sk.now = we
		if horizon > 0 && sk.now > horizon {
			sk.advanceTo(horizon)
		}
		if err != nil {
			return err
		}
	}
}

// advanceTo clamps the coordinator and shard clocks onto the horizon after
// the final window (which may have run with an exclusive limit one tick
// past it).
func (sk *ShardedKernel) advanceTo(horizon Time) {
	for _, k := range sk.shards {
		if k.now != horizon {
			k.now = horizon
		}
	}
	sk.now = horizon
}

// Close tears down the persistent workers. The kernel must not be Run
// again afterwards; telemetry accessors remain valid. Close is idempotent.
func (sk *ShardedKernel) Close() {
	if sk.closed {
		return
	}
	sk.closed = true
	if sk.started {
		for i := range sk.start {
			close(sk.start[i])
		}
	}
}
