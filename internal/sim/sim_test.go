package sim

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestRunDispatchesInTimeOrder(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.At(3*time.Second, func() { order = append(order, 3) })
	k.At(1*time.Second, func() { order = append(order, 1) })
	k.At(2*time.Second, func() { order = append(order, 2) })
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if k.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", k.Now())
	}
	if k.Processed() != 3 {
		t.Errorf("Processed = %d, want 3", k.Processed())
	}
}

func TestEqualTimestampsAreFIFO(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(time.Second, func() { order = append(order, i) })
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	k := NewKernel(1)
	var at Time
	k.After(5*time.Second, func() {
		k.After(2*time.Second, func() { at = k.Now() })
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if at != 7*time.Second {
		t.Errorf("nested After fired at %v, want 7s", at)
	}
}

func TestSchedulingInPastClampsToNow(t *testing.T) {
	k := NewKernel(1)
	var fired Time
	k.At(10*time.Second, func() {
		k.At(1*time.Second, func() { fired = k.Now() }) // in the past
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired != 10*time.Second {
		t.Errorf("past event fired at %v, want clamp to 10s", fired)
	}
}

func TestHorizonStopsAndAdvancesClock(t *testing.T) {
	k := NewKernel(1)
	ran := 0
	k.At(1*time.Second, func() { ran++ })
	k.At(100*time.Second, func() { ran++ })
	if err := k.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Errorf("ran = %d, want 1", ran)
	}
	if k.Now() != 10*time.Second {
		t.Errorf("Now = %v, want horizon 10s", k.Now())
	}
	if k.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", k.Pending())
	}
	// Resume past the horizon.
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Errorf("after resume ran = %d, want 2", ran)
	}
}

func TestHorizonWithEmptyQueueAdvancesClock(t *testing.T) {
	k := NewKernel(1)
	if err := k.Run(42 * time.Second); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 42*time.Second {
		t.Errorf("Now = %v, want 42s", k.Now())
	}
}

func TestCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	id := k.At(time.Second, func() { fired = true })
	if !k.Cancel(id) {
		t.Error("Cancel should report true for a pending event")
	}
	if k.Cancel(id) {
		t.Error("double Cancel should report false")
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
	if k.Cancel(EventID{}) {
		t.Error("Cancel of zero EventID should be a no-op")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	k := NewKernel(1)
	var fired []int
	var ids []EventID
	for i := 0; i < 20; i++ {
		i := i
		ids = append(ids, k.At(Time(i)*time.Second, func() { fired = append(fired, i) }))
	}
	for i := 0; i < 20; i += 2 {
		k.Cancel(ids[i])
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 10 {
		t.Fatalf("fired %d events, want 10: %v", len(fired), fired)
	}
	if !sort.IntsAreSorted(fired) {
		t.Errorf("fired out of order: %v", fired)
	}
	for _, v := range fired {
		if v%2 == 0 {
			t.Errorf("cancelled event %d fired", v)
		}
	}
}

func TestStop(t *testing.T) {
	k := NewKernel(1)
	ran := 0
	k.At(1*time.Second, func() { ran++; k.Stop() })
	k.At(2*time.Second, func() { ran++ })
	err := k.Run(0)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if ran != 1 {
		t.Errorf("ran = %d, want 1", ran)
	}
}

func TestStep(t *testing.T) {
	k := NewKernel(1)
	ran := 0
	k.At(time.Second, func() { ran++ })
	if !k.Step() {
		t.Fatal("Step should dispatch")
	}
	if ran != 1 || k.Now() != time.Second {
		t.Fatalf("ran=%d now=%v", ran, k.Now())
	}
	if k.Step() {
		t.Error("Step on empty queue should report false")
	}
}

func TestTicker(t *testing.T) {
	k := NewKernel(1)
	var ticks []Time
	tk, err := k.Every(time.Second, func() { ticks = append(ticks, k.Now()) })
	if err != nil {
		t.Fatal(err)
	}
	k.At(3500*time.Millisecond, func() { tk.Stop() })
	if err := k.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v, want 3 ticks", ticks)
	}
	for i, at := range ticks {
		if want := Time(i+1) * time.Second; at != want {
			t.Errorf("tick %d at %v, want %v", i, at, want)
		}
	}
	tk.Stop() // double stop is safe
}

func TestTickerValidation(t *testing.T) {
	k := NewKernel(1)
	if _, err := k.Every(0, func() {}); err == nil {
		t.Error("want error for zero period")
	}
	if _, err := k.Every(time.Second, nil); err == nil {
		t.Error("want error for nil callback")
	}
}

func TestNilCallbackIgnored(t *testing.T) {
	k := NewKernel(1)
	id := k.At(time.Second, nil)
	if id.ev != nil {
		t.Error("nil callback should not schedule")
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []int64 {
		k := NewKernel(seed)
		var draws []int64
		var step func()
		step = func() {
			draws = append(draws, k.RNG().Int63())
			if len(draws) < 50 {
				k.After(Time(k.RNG().Intn(1000))*time.Millisecond, step)
			}
		}
		k.After(time.Millisecond, step)
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
		return draws
	}
	a, b := run(99), run(99)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(100)
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
			break
		}
	}
	if same && len(a) == len(c) {
		t.Error("different seeds produced identical runs")
	}
}

func TestNewStreamStableAndDecorrelated(t *testing.T) {
	k1 := NewKernel(7)
	k2 := NewKernel(7)
	s1 := k1.NewStream("radio")
	s2 := k2.NewStream("radio")
	for i := 0; i < 10; i++ {
		if s1.Int63() != s2.Int63() {
			t.Fatal("same-name streams differ across kernels with same seed")
		}
	}
	a := NewKernel(7).NewStream("radio")
	b := NewKernel(7).NewStream("mobility")
	diff := false
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different-name streams are identical")
	}
}

// TestHeapOrderProperty: random batches of events must always fire in
// nondecreasing time order.
func TestHeapOrderProperty(t *testing.T) {
	f := func(seed int64, raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 300 {
			raw = raw[:300]
		}
		k := NewKernel(seed)
		var fired []Time
		for _, r := range raw {
			at := Time(r) * time.Millisecond
			k.At(at, func() { fired = append(fired, k.Now()) })
		}
		if err := k.Run(0); err != nil {
			return false
		}
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestStaleEventIDAfterRecycle: once an event fires, its slot may be
// recycled for a brand-new event. The stale EventID must neither report
// Pending nor cancel the new incarnation.
func TestStaleEventIDAfterRecycle(t *testing.T) {
	k := NewKernel(1)
	firstFired := false
	stale := k.At(time.Second, func() { firstFired = true })
	if !k.Step() {
		t.Fatal("Step should dispatch")
	}
	if !firstFired {
		t.Fatal("first event did not fire")
	}
	if stale.Pending() {
		t.Error("fired event still reports Pending")
	}
	// The freelist hands the same slot to the next event.
	secondFired := false
	fresh := k.At(2*time.Second, func() { secondFired = true })
	if stale.ev != fresh.ev {
		t.Fatalf("freelist did not recycle the event slot")
	}
	if stale.Pending() {
		t.Error("stale EventID reports Pending for the recycled slot")
	}
	if k.Cancel(stale) {
		t.Error("stale EventID cancelled the recycled event")
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if !secondFired {
		t.Error("recycled event lost its callback: second event never fired")
	}
}

// TestCancelledEventIsRecycled: Cancel must return events to the freelist
// too, so cancelled timers (the common vnet/vcloud timeout pattern) do not
// leak allocations.
func TestCancelledEventIsRecycled(t *testing.T) {
	k := NewKernel(1)
	id := k.At(time.Second, func() {})
	if !k.Cancel(id) {
		t.Fatal("Cancel failed")
	}
	fresh := k.At(time.Second, func() {})
	if id.ev != fresh.ev {
		t.Error("cancelled event was not recycled")
	}
	if id.Pending() {
		t.Error("stale EventID for cancelled event reports Pending")
	}
}

func TestAtArgDispatchesWithArgument(t *testing.T) {
	k := NewKernel(1)
	var got []int
	record := func(a any) { got = append(got, a.(int)) }
	k.AtArg(2*time.Second, record, 2)
	k.AtArg(1*time.Second, record, 1)
	k.AfterArg(3*time.Second, record, 3)
	if k.AtArg(time.Second, nil, 9).Pending() {
		t.Error("nil argFn should not schedule")
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("AtArg order = %v, want [1 2 3]", got)
	}
}

// TestAtArgOrderingSharedWithAt: At and AtArg events interleave in one
// (time, seq) order — the freelist refactor must not fork the contract.
func TestAtArgOrderingSharedWithAt(t *testing.T) {
	k := NewKernel(1)
	var got []int
	record := func(a any) { got = append(got, a.(int)) }
	k.At(time.Second, func() { got = append(got, 0) })
	k.AtArg(time.Second, record, 1)
	k.At(time.Second, func() { got = append(got, 2) })
	k.AtArg(time.Second, record, 3)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("mixed At/AtArg FIFO violated: %v", got)
		}
	}
}

// TestScheduleFireCancelAllocFree is the perf regression guard for the
// freelist: once warm, scheduling, firing and cancelling events must not
// allocate at all.
func TestScheduleFireCancelAllocFree(t *testing.T) {
	k := NewKernel(1)
	fn := func() {}
	argFn := func(any) {}
	// Warm the freelist and the heap's backing array.
	for i := 0; i < 64; i++ {
		k.After(time.Millisecond, fn)
	}
	for k.Step() {
	}
	allocs := testing.AllocsPerRun(1000, func() {
		k.Cancel(k.After(time.Millisecond, fn))
		k.After(time.Millisecond, fn)
		k.AfterArg(time.Millisecond, argFn, nil)
		k.Step()
		k.Step()
	})
	if allocs != 0 {
		t.Errorf("schedule/fire/cancel allocated %.1f times per run, want 0", allocs)
	}
}

func TestThroughputCounter(t *testing.T) {
	k := NewKernel(1)
	for i := 0; i < 1000; i++ {
		k.At(Time(i)*time.Millisecond, func() {})
	}
	if k.Throughput() != 0 {
		t.Errorf("Throughput before Run = %v, want 0", k.Throughput())
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if k.WallTime() <= 0 {
		t.Error("WallTime not accumulated by Run")
	}
	if k.Throughput() <= 0 {
		t.Errorf("Throughput = %v, want > 0 after dispatching %d events", k.Throughput(), k.Processed())
	}
}

func BenchmarkKernelScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := NewKernel(1)
		rng := k.NewStream("bench")
		for j := 0; j < 1000; j++ {
			k.At(Time(rng.Intn(1_000_000))*time.Microsecond, func() {})
		}
		if err := k.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelHotLoop measures the steady-state schedule+fire cycle on
// a warm kernel — the path the freelist optimizes.
func BenchmarkKernelHotLoop(b *testing.B) {
	k := NewKernel(1)
	fn := func() {}
	for i := 0; i < 64; i++ {
		k.After(time.Millisecond, fn)
	}
	for k.Step() {
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(time.Millisecond, fn)
		k.Step()
	}
}
