// Package sim provides the deterministic discrete-event simulation kernel
// that the whole vehicular-cloud stack runs on. A Kernel owns a virtual
// clock and a priority queue of scheduled events; entities schedule
// callbacks at future virtual times and the kernel dispatches them in
// (time, sequence) order, so a run with a fixed seed is fully reproducible.
//
// The kernel is intentionally single-goroutine: all model code executes in
// the caller's goroutine and no locking is required inside models. This is
// the standard architecture for network simulators (ns-3, OMNeT++) and
// keeps the hot path allocation-light: fired and cancelled events are
// recycled through a freelist, and the AtArg/AfterArg variants let callers
// schedule pooled callback state without allocating a closure per event.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp measured from the start of the simulation.
type Time = time.Duration

// Event is a scheduled callback. Events are recycled through the kernel's
// freelist once fired or cancelled; gen disambiguates incarnations so a
// stale EventID held across a recycle can never cancel the wrong event.
type event struct {
	at    Time
	seq   uint64 // tie-breaker: FIFO among equal timestamps
	fn    func()
	argFn func(any) // alternative callback form (AtArg); nil when fn is set
	arg   any
	index int    // heap index, -1 when popped/cancelled
	gen   uint32 // incremented every time the event is recycled
}

// EventID identifies a scheduled event so it can be cancelled. The
// generation tag makes IDs safe to hold indefinitely: once the event fires
// or is cancelled its slot may be reused for a new event, and the stale ID
// simply stops matching.
type EventID struct {
	ev  *event
	gen uint32
}

// Pending reports whether the event is still scheduled (not yet fired
// and not cancelled).
func (id EventID) Pending() bool {
	return id.ev != nil && id.ev.gen == id.gen && id.ev.index >= 0
}

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// ErrStopped is returned by Run when the simulation was stopped explicitly
// via Stop rather than by exhausting events or reaching the horizon.
var ErrStopped = errors.New("sim: stopped")

// Kernel is the discrete-event simulation engine.
type Kernel struct {
	now     Time
	seq     uint64
	queue   eventQueue
	free    []*event // recycled events; bounds allocation to peak concurrency
	rng     *rand.Rand
	seed    int64
	stopped bool
	// processed counts dispatched events, exposed for tests and reports.
	processed uint64
	// runWall accumulates real time spent inside Run/Step, so
	// Throughput can report events per wall-clock second.
	runWall time.Duration
}

// NewKernel creates a kernel whose random streams derive from seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		rng:  rand.New(rand.NewSource(seed)),
		seed: seed,
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Seed returns the seed the kernel was created with.
func (k *Kernel) Seed() int64 { return k.seed }

// Processed returns the number of events dispatched so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// Pending returns the number of events currently scheduled.
func (k *Kernel) Pending() int { return len(k.queue) }

// WallTime returns the cumulative real time spent dispatching events
// inside Run and Step.
func (k *Kernel) WallTime() time.Duration { return k.runWall }

// Throughput returns the kernel's event dispatch rate in events per
// wall-clock second, aggregated over every Run/Step call so far. It
// returns 0 before any wall time has been spent.
func (k *Kernel) Throughput() float64 {
	if k.runWall <= 0 {
		return 0
	}
	return float64(k.processed) / k.runWall.Seconds()
}

// RNG returns the kernel's random source. Model code must draw all
// randomness from here (or from streams derived via NewStream) so runs are
// reproducible.
func (k *Kernel) RNG() *rand.Rand { return k.rng }

// NewStream returns an independent random stream labelled by name. Distinct
// names yield decorrelated streams that are stable across runs with the
// same kernel seed, which lets one subsystem add random draws without
// perturbing another subsystem's stream.
func (k *Kernel) NewStream(name string) *rand.Rand {
	return rand.New(rand.NewSource(SubSeed(k.seed, name)))
}

// SubSeed derives the seed of the named substream of seed — the same
// derivation NewStream uses. It exists so components that need a whole
// child kernel rather than a stream (the sharded kernel seeds one kernel
// per shard) stay on the one labelled-derivation scheme.
func SubSeed(seed int64, name string) int64 {
	return seed ^ int64(fnv64(name))
}

func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// alloc takes an event from the freelist (or allocates the first time) and
// initializes it for scheduling at t. The (time, seq) ordering contract is
// untouched by recycling: seq still increments once per scheduled event.
func (k *Kernel) alloc(t Time, fn func(), argFn func(any), arg any) *event {
	var ev *event
	if n := len(k.free); n > 0 {
		ev = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		//vcloudlint:allow hotalloc freelist cold start; amortized to zero once recycle refills free
		ev = new(event)
	}
	ev.at = t
	ev.seq = k.seq
	ev.fn = fn
	ev.argFn = argFn
	ev.arg = arg
	k.seq++
	return ev
}

// recycle returns a fired or cancelled event to the freelist. Bumping gen
// invalidates every EventID issued for the previous incarnation; clearing
// the callback fields drops references so recycled events never pin model
// state for the GC.
//
//vcloudlint:hotpath runs once per fired event; feeds the freelist that keeps alloc allocation-free
func (k *Kernel) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.argFn = nil
	ev.arg = nil
	k.free = append(k.free, ev)
}

func (k *Kernel) schedule(t Time, fn func(), argFn func(any), arg any) EventID {
	if t < k.now {
		t = k.now
	}
	ev := k.alloc(t, fn, argFn, arg)
	heap.Push(&k.queue, ev)
	return EventID{ev: ev, gen: ev.gen}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) runs the event at the current time instead, preserving event
// ordering. The returned EventID can be passed to Cancel.
//
//vcloudlint:hotpath every scheduled event funnels through here; measured by BenchmarkSchedule AllocsPerRun
func (k *Kernel) At(t Time, fn func()) EventID {
	if fn == nil {
		return EventID{}
	}
	return k.schedule(t, fn, nil, nil)
}

// AtArg schedules fn(arg) to run at absolute virtual time t. It is the
// allocation-light form of At for hot paths: a caller that reuses a pooled
// arg and a package-level fn schedules events with zero heap allocations,
// where At would allocate a closure per call.
//
//vcloudlint:hotpath the allocation-light scheduling form exists for hot paths; it must stay allocation-free
func (k *Kernel) AtArg(t Time, fn func(any), arg any) EventID {
	if fn == nil {
		return EventID{}
	}
	return k.schedule(t, nil, fn, arg)
}

// After schedules fn to run d from now.
//
//vcloudlint:hotpath relative scheduling used by protocol timers on every frame
func (k *Kernel) After(d Time, fn func()) EventID {
	return k.At(k.now+d, fn)
}

// AfterArg schedules fn(arg) to run d from now (see AtArg).
//
//vcloudlint:hotpath per-frame delivery scheduling in radio rides on this form
func (k *Kernel) AfterArg(d Time, fn func(any), arg any) EventID {
	return k.AtArg(k.now+d, fn, arg)
}

// Every schedules fn to run every period, starting after the first period.
// It returns a Ticker that can be stopped. period must be positive.
func (k *Kernel) Every(period Time, fn func()) (*Ticker, error) {
	if period <= 0 {
		return nil, fmt.Errorf("sim: ticker period must be positive, got %v", period)
	}
	if fn == nil {
		return nil, errors.New("sim: ticker callback must not be nil")
	}
	t := &Ticker{k: k, period: period, fn: fn}
	t.schedule()
	return t, nil
}

// Ticker repeats a callback at a fixed virtual period until stopped.
type Ticker struct {
	k       *Kernel
	period  Time
	fn      func()
	pending EventID
	stopped bool
}

// tickerFire is the shared arg-carrying tick callback: scheduling via
// AfterArg with the *Ticker as the argument keeps a steady-state ticker
// allocation-free (a closure per tick would defeat the event freelist).
func tickerFire(a any) {
	t := a.(*Ticker)
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.schedule()
	}
}

func (t *Ticker) schedule() {
	t.pending = t.k.AfterArg(t.period, tickerFire, t)
}

// Stop halts the ticker. It is safe to call multiple times.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.k.Cancel(t.pending)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op. It reports whether the event was
// actually removed.
func (k *Kernel) Cancel(id EventID) bool {
	if !id.Pending() {
		return false
	}
	heap.Remove(&k.queue, id.ev.index)
	k.recycle(id.ev)
	return true
}

// Stop makes Run return ErrStopped after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// fire dispatches one popped event. The event is recycled before its
// callback runs — it is already off the heap, the callback is copied out,
// and recycling first keeps the freelist hot when callbacks schedule
// follow-up events.
func (k *Kernel) fire(ev *event) {
	k.now = ev.at
	k.processed++
	fn, argFn, arg := ev.fn, ev.argFn, ev.arg
	k.recycle(ev)
	if argFn != nil {
		argFn(arg)
	} else {
		fn()
	}
}

// Run dispatches events until the queue is empty or the horizon is reached.
// The clock is left at the time of the last dispatched event (or at horizon
// if the horizon cut the run short). A zero or negative horizon means "run
// until the queue drains".
func (k *Kernel) Run(horizon Time) error {
	k.stopped = false
	start := time.Now()
	defer func() { k.runWall += time.Since(start) }()
	for len(k.queue) > 0 {
		if k.stopped {
			return ErrStopped
		}
		next := k.queue[0]
		if horizon > 0 && next.at > horizon {
			k.now = horizon
			return nil
		}
		heap.Pop(&k.queue)
		k.fire(next)
	}
	if horizon > 0 && k.now < horizon {
		k.now = horizon
	}
	return nil
}

// RunBefore dispatches every event with at < limit and leaves the clock at
// limit. It is the windowed form of Run used by the sharded kernel: windows
// are half-open, so an event scheduled at exactly limit (the earliest
// timestamp a conservative cross-shard injection may carry) fires in the
// next window, after the barrier has merged all injections in their fixed
// order. Events the window does not reach stay queued.
func (k *Kernel) RunBefore(limit Time) error {
	k.stopped = false
	start := time.Now()
	defer func() { k.runWall += time.Since(start) }()
	for len(k.queue) > 0 {
		if k.stopped {
			return ErrStopped
		}
		next := k.queue[0]
		if next.at >= limit {
			break
		}
		heap.Pop(&k.queue)
		k.fire(next)
	}
	if k.now < limit {
		k.now = limit
	}
	return nil
}

// NextEventTime returns the timestamp of the earliest pending event. The
// boolean is false when no event is queued.
func (k *Kernel) NextEventTime() (Time, bool) {
	if len(k.queue) == 0 {
		return 0, false
	}
	return k.queue[0].at, true
}

// Step dispatches exactly one event if any is pending, and reports whether
// an event was dispatched.
func (k *Kernel) Step() bool {
	if len(k.queue) == 0 {
		return false
	}
	start := time.Now()
	next := heap.Pop(&k.queue).(*event)
	k.fire(next)
	k.runWall += time.Since(start)
	return true
}
