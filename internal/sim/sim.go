// Package sim provides the deterministic discrete-event simulation kernel
// that the whole vehicular-cloud stack runs on. A Kernel owns a virtual
// clock and a priority queue of scheduled events; entities schedule
// callbacks at future virtual times and the kernel dispatches them in
// (time, sequence) order, so a run with a fixed seed is fully reproducible.
//
// The kernel is intentionally single-goroutine: all model code executes in
// the caller's goroutine and no locking is required inside models. This is
// the standard architecture for network simulators (ns-3, OMNeT++) and
// keeps the hot path allocation-light.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp measured from the start of the simulation.
type Time = time.Duration

// Event is a scheduled callback.
type event struct {
	at    Time
	seq   uint64 // tie-breaker: FIFO among equal timestamps
	fn    func()
	index int // heap index, -1 when popped/cancelled
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ ev *event }

// Pending reports whether the event is still scheduled (not yet fired
// and not cancelled).
func (id EventID) Pending() bool { return id.ev != nil && id.ev.index >= 0 }

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// ErrStopped is returned by Run when the simulation was stopped explicitly
// via Stop rather than by exhausting events or reaching the horizon.
var ErrStopped = errors.New("sim: stopped")

// Kernel is the discrete-event simulation engine.
type Kernel struct {
	now     Time
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	seed    int64
	stopped bool
	// processed counts dispatched events, exposed for tests and reports.
	processed uint64
}

// NewKernel creates a kernel whose random streams derive from seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		rng:  rand.New(rand.NewSource(seed)),
		seed: seed,
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Seed returns the seed the kernel was created with.
func (k *Kernel) Seed() int64 { return k.seed }

// Processed returns the number of events dispatched so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// Pending returns the number of events currently scheduled.
func (k *Kernel) Pending() int { return len(k.queue) }

// RNG returns the kernel's random source. Model code must draw all
// randomness from here (or from streams derived via NewStream) so runs are
// reproducible.
func (k *Kernel) RNG() *rand.Rand { return k.rng }

// NewStream returns an independent random stream labelled by name. Distinct
// names yield decorrelated streams that are stable across runs with the
// same kernel seed, which lets one subsystem add random draws without
// perturbing another subsystem's stream.
func (k *Kernel) NewStream(name string) *rand.Rand {
	h := fnv64(name)
	return rand.New(rand.NewSource(k.seed ^ int64(h)))
}

func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) runs the event at the current time instead, preserving event
// ordering. The returned EventID can be passed to Cancel.
func (k *Kernel) At(t Time, fn func()) EventID {
	if fn == nil {
		return EventID{}
	}
	if t < k.now {
		t = k.now
	}
	ev := &event{at: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, ev)
	return EventID{ev: ev}
}

// After schedules fn to run d from now.
func (k *Kernel) After(d Time, fn func()) EventID {
	return k.At(k.now+d, fn)
}

// Every schedules fn to run every period, starting after the first period.
// It returns a Ticker that can be stopped. period must be positive.
func (k *Kernel) Every(period Time, fn func()) (*Ticker, error) {
	if period <= 0 {
		return nil, fmt.Errorf("sim: ticker period must be positive, got %v", period)
	}
	if fn == nil {
		return nil, errors.New("sim: ticker callback must not be nil")
	}
	t := &Ticker{k: k, period: period, fn: fn}
	t.schedule()
	return t, nil
}

// Ticker repeats a callback at a fixed virtual period until stopped.
type Ticker struct {
	k       *Kernel
	period  Time
	fn      func()
	pending EventID
	stopped bool
}

func (t *Ticker) schedule() {
	t.pending = t.k.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop halts the ticker. It is safe to call multiple times.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.k.Cancel(t.pending)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op. It reports whether the event was
// actually removed.
func (k *Kernel) Cancel(id EventID) bool {
	if id.ev == nil || id.ev.index < 0 {
		return false
	}
	heap.Remove(&k.queue, id.ev.index)
	id.ev.index = -1
	return true
}

// Stop makes Run return ErrStopped after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run dispatches events until the queue is empty or the horizon is reached.
// The clock is left at the time of the last dispatched event (or at horizon
// if the horizon cut the run short). A zero or negative horizon means "run
// until the queue drains".
func (k *Kernel) Run(horizon Time) error {
	k.stopped = false
	for len(k.queue) > 0 {
		if k.stopped {
			return ErrStopped
		}
		next := k.queue[0]
		if horizon > 0 && next.at > horizon {
			k.now = horizon
			return nil
		}
		heap.Pop(&k.queue)
		k.now = next.at
		k.processed++
		next.fn()
	}
	if horizon > 0 && k.now < horizon {
		k.now = horizon
	}
	return nil
}

// Step dispatches exactly one event if any is pending, and reports whether
// an event was dispatched.
func (k *Kernel) Step() bool {
	if len(k.queue) == 0 {
		return false
	}
	next := heap.Pop(&k.queue).(*event)
	k.now = next.at
	k.processed++
	next.fn()
	return true
}
