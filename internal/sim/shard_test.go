package sim

import (
	"fmt"
	"testing"
	"time"
)

// TestShardedOneShardMatchesPlainKernel drives the same synthetic workload
// through a plain kernel and a one-shard ShardedKernel and checks the
// dispatch traces are identical: windowing alone must never reorder.
func TestShardedOneShardMatchesPlainKernel(t *testing.T) {
	load := func(k *Kernel, trace *[]string) {
		for i := 0; i < 50; i++ {
			i := i
			at := Time(i%7) * 10 * time.Millisecond
			k.At(at, func() {
				*trace = append(*trace, fmt.Sprintf("%d@%v", i, k.Now()))
				if i%5 == 0 {
					k.After(3*time.Millisecond, func() {
						*trace = append(*trace, fmt.Sprintf("follow%d@%v", i, k.Now()))
					})
				}
			})
		}
	}

	var serial []string
	pk := NewKernel(7)
	load(pk, &serial)
	if err := pk.Run(0); err != nil {
		t.Fatalf("plain run: %v", err)
	}

	var sharded []string
	sk, err := NewShardedKernel(7, 1, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("NewShardedKernel: %v", err)
	}
	defer sk.Close()
	load(sk.Shard(0), &sharded)
	if err := sk.Run(0); err != nil {
		t.Fatalf("sharded run: %v", err)
	}

	if len(serial) != len(sharded) {
		t.Fatalf("trace lengths differ: serial %d vs sharded %d", len(serial), len(sharded))
	}
	for i := range serial {
		if serial[i] != sharded[i] {
			t.Fatalf("trace diverges at %d: serial %q vs sharded %q", i, serial[i], sharded[i])
		}
	}
	if sk.Processed() != pk.Processed() {
		t.Fatalf("processed differ: %d vs %d", sk.Processed(), pk.Processed())
	}
}

// TestShardedCrossMergeOrder injects same-timestamp cross events from
// several source shards and checks they dispatch in the fixed
// (time, source shard, sequence) merge order.
func TestShardedCrossMergeOrder(t *testing.T) {
	const n = 4
	L := 10 * time.Millisecond
	sk, err := NewShardedKernel(1, n, L)
	if err != nil {
		t.Fatalf("NewShardedKernel: %v", err)
	}
	defer sk.Close()

	var got []string
	record := func(a any) { got = append(got, a.(string)) }
	// Every shard emits two cross events to shard 0, all at the same
	// timestamp, from inside its first window. Emission order within a
	// shard is its seq order; across shards the merge sorts by source id.
	for s := n - 1; s >= 1; s-- {
		s := s
		sk.Shard(s).At(0, func() {
			sk.Inject(s, 0, L, record, fmt.Sprintf("s%d/a", s))
			sk.Inject(s, 0, L, record, fmt.Sprintf("s%d/b", s))
		})
	}
	// Shard 0 needs an event in window one so its clock participates.
	sk.Shard(0).At(0, func() {})
	if err := sk.Run(0); err != nil {
		t.Fatalf("run: %v", err)
	}

	want := []string{"s1/a", "s1/b", "s2/a", "s2/b", "s3/a", "s3/b"}
	if len(got) != len(want) {
		t.Fatalf("got %d cross dispatches, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch %d = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
	if sk.CrossEvents() != uint64(len(want)) {
		t.Fatalf("CrossEvents = %d, want %d", sk.CrossEvents(), len(want))
	}
	if sk.Windows() == 0 {
		t.Fatal("no windows recorded")
	}
}

// TestInjectLookaheadViolationPanics checks the conservative contract is
// enforced: a cross event landing inside the current window is a model bug
// and must not be silently absorbed.
func TestInjectLookaheadViolationPanics(t *testing.T) {
	sk, err := NewShardedKernel(1, 2, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("NewShardedKernel: %v", err)
	}
	defer sk.Close()
	panicked := false
	sk.Shard(0).At(0, func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		// Window is [0, 10ms); landing at 5ms violates the lookahead.
		sk.Inject(0, 1, 5*time.Millisecond, func(any) {}, nil)
	})
	sk.Shard(1).At(0, func() {})
	if err := sk.Run(0); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !panicked {
		t.Fatal("conservative violation did not panic")
	}
}

// TestShardedHorizon checks inclusive horizon semantics and clock
// clamping, matching Kernel.Run.
func TestShardedHorizon(t *testing.T) {
	sk, err := NewShardedKernel(3, 2, 7*time.Millisecond)
	if err != nil {
		t.Fatalf("NewShardedKernel: %v", err)
	}
	defer sk.Close()
	fired := make([]int, 3)
	horizon := 40 * time.Millisecond
	sk.Shard(0).At(horizon, func() { fired[0]++ })   // exactly at horizon: runs
	sk.Shard(1).At(horizon-1, func() { fired[1]++ }) // before: runs
	sk.Shard(1).At(horizon+1, func() { fired[2]++ }) // past: stays queued
	sk.Shard(0).At(2*horizon, func() { t.Error("far future event ran") })
	if err := sk.Run(horizon); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fired[0] != 1 || fired[1] != 1 || fired[2] != 0 {
		t.Fatalf("fired = %v, want [1 1 0]", fired)
	}
	if sk.Now() != horizon {
		t.Fatalf("Now = %v, want %v", sk.Now(), horizon)
	}
	for i := 0; i < sk.NumShards(); i++ {
		if sk.Shard(i).Now() != horizon {
			t.Fatalf("shard %d clock = %v, want %v", i, sk.Shard(i).Now(), horizon)
		}
	}
	if sk.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", sk.Pending())
	}
}

// TestShardedTelemetry sanity-checks the aggregated counters.
func TestShardedTelemetry(t *testing.T) {
	sk, err := NewShardedKernel(9, 4, time.Millisecond)
	if err != nil {
		t.Fatalf("NewShardedKernel: %v", err)
	}
	defer sk.Close()
	for s := 0; s < 4; s++ {
		s := s
		for i := 0; i < 25; i++ {
			sk.Shard(s).At(Time(i)*time.Millisecond, func() {
				if s < 3 {
					sk.Inject(s, (s+1)%4, sk.Shard(s).Now()+time.Millisecond, func(any) {}, nil)
				}
			})
		}
	}
	if err := sk.Run(0); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := sk.Processed(); got < 100 {
		t.Fatalf("Processed = %d, want >= 100", got)
	}
	if sk.BusyWall() < sk.CritPathWall() {
		t.Fatalf("BusyWall %v < CritPathWall %v", sk.BusyWall(), sk.CritPathWall())
	}
	if sk.CritPathWall() <= 0 {
		t.Fatal("CritPathWall not accumulated")
	}
}

// TestShardedRunAfterClose checks Close is idempotent and Run refuses to
// restart torn-down workers.
func TestShardedRunAfterClose(t *testing.T) {
	sk, err := NewShardedKernel(1, 2, time.Millisecond)
	if err != nil {
		t.Fatalf("NewShardedKernel: %v", err)
	}
	sk.Shard(0).At(0, func() {})
	if err := sk.Run(0); err != nil {
		t.Fatalf("run: %v", err)
	}
	sk.Close()
	sk.Close()
	if err := sk.Run(0); err != ErrClosed {
		t.Fatalf("Run after Close = %v, want ErrClosed", err)
	}
}

// TestSubSeedMatchesNewStream pins the shard kernel seed derivation to the
// NewStream scheme.
func TestSubSeedMatchesNewStream(t *testing.T) {
	k := NewKernel(123)
	a := k.NewStream("shard/2").Int63()
	b := NewKernel(SubSeed(123, "shard/2")).RNG().Int63()
	if a != b {
		t.Fatalf("SubSeed diverges from NewStream derivation: %d vs %d", a, b)
	}
}

// TestHashUnitRange checks the counter-hash draw stays in [0, 1) and is
// reproducible.
func TestHashUnitRange(t *testing.T) {
	for i := uint64(0); i < 1000; i++ {
		u := HashUnit(42, i, i*3)
		if u < 0 || u >= 1 {
			t.Fatalf("HashUnit out of range: %v", u)
		}
		if u != HashUnit(42, i, i*3) {
			t.Fatal("HashUnit not reproducible")
		}
	}
	if HashUnit(1, 2, 3) == HashUnit(1, 3, 2) {
		t.Fatal("HashUnit ignores argument order")
	}
}
