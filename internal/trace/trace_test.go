package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(0); err == nil {
		t.Error("zero capacity should error")
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Emit(0, CatRadio, 1, "ignored")
	if r.Count() != 0 || r.Events("", 0) != nil || r.Enabled() {
		t.Error("nil recorder should be inert")
	}
}

func TestEmitAndFilter(t *testing.T) {
	r, err := NewRecorder(100)
	if err != nil {
		t.Fatal(err)
	}
	r.Emit(1*time.Second, CatRadio, 1, "frame %d", 1)
	r.Emit(2*time.Second, CatCloud, 2, "task assigned")
	r.Emit(3*time.Second, CatRadio, 3, "frame %d", 2)
	if r.Count() != 3 {
		t.Errorf("Count = %d", r.Count())
	}
	all := r.Events("", 0)
	if len(all) != 3 {
		t.Fatalf("all events = %d", len(all))
	}
	radio := r.Events(CatRadio, 0)
	if len(radio) != 2 || radio[0].Message != "frame 1" || radio[1].Message != "frame 2" {
		t.Errorf("radio filter = %+v", radio)
	}
	late := r.Events("", 2*time.Second)
	if len(late) != 2 {
		t.Errorf("since filter = %d events", len(late))
	}
	// Chronological order.
	for i := 1; i < len(all); i++ {
		if all[i].At < all[i-1].At {
			t.Error("events out of order")
		}
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r, err := NewRecorder(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		r.Emit(time.Duration(i)*time.Second, CatCloud, int32(i), "e%d", i)
	}
	got := r.Events("", 0)
	if len(got) != 4 {
		t.Fatalf("retained = %d, want 4", len(got))
	}
	if got[0].Message != "e6" || got[3].Message != "e9" {
		t.Errorf("retained window wrong: %v .. %v", got[0].Message, got[3].Message)
	}
	if r.Count() != 10 {
		t.Errorf("Count = %d", r.Count())
	}
}

func TestDumpAndSummary(t *testing.T) {
	r, err := NewRecorder(10)
	if err != nil {
		t.Fatal(err)
	}
	r.Emit(time.Second, CatAuth, 7, "handshake ok")
	r.Emit(2*time.Second, CatAuth, 8, "handshake failed")
	r.Emit(3*time.Second, CatTrust, 9, "decision real")
	var buf bytes.Buffer
	if err := r.Dump(&buf, CatAuth, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "handshake ok") || strings.Contains(out, "decision") {
		t.Errorf("dump = %q", out)
	}
	sum := r.Summary()
	if !strings.Contains(sum, "auth=2") || !strings.Contains(sum, "trust=1") {
		t.Errorf("summary = %q", sum)
	}
}
