// Package trace provides a lightweight, bounded event recorder for
// simulation debugging and post-run analysis: subsystems emit structured
// events into a ring buffer; tools dump them filtered by category or
// time window. Recording costs one append when enabled and nothing when
// disabled, so instrumentation can stay in place permanently.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"vcloud/internal/sim"
)

// Category classifies events for filtering.
type Category string

// Common categories used across the repository.
const (
	CatRadio   Category = "radio"
	CatCluster Category = "cluster"
	CatCloud   Category = "cloud"
	CatAuth    Category = "auth"
	CatTrust   Category = "trust"
	CatAttack  Category = "attack"
)

// Event is one recorded occurrence.
type Event struct {
	At       sim.Time
	Category Category
	// Node is the acting entity's address (-1 for global events).
	Node int32
	// Message is the human-readable description.
	Message string
}

// Recorder is a bounded ring of events. The zero value is disabled;
// create with NewRecorder to enable.
type Recorder struct {
	events []Event
	head   int
	full   bool
	// count is the total number of events ever recorded.
	count uint64
}

// NewRecorder creates a recorder keeping the most recent capacity events.
func NewRecorder(capacity int) (*Recorder, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("trace: capacity must be >= 1, got %d", capacity)
	}
	return &Recorder{events: make([]Event, capacity)}, nil
}

// Enabled reports whether the recorder accepts events.
func (r *Recorder) Enabled() bool { return r != nil && len(r.events) > 0 }

// Emit records an event. Safe to call on a nil recorder (no-op), so
// instrumented code needs no conditionals.
func (r *Recorder) Emit(at sim.Time, cat Category, node int32, format string, args ...any) {
	if !r.Enabled() {
		return
	}
	r.events[r.head] = Event{At: at, Category: cat, Node: node, Message: fmt.Sprintf(format, args...)}
	r.head = (r.head + 1) % len(r.events)
	if r.head == 0 {
		r.full = true
	}
	r.count++
}

// Count returns the total number of events ever emitted.
func (r *Recorder) Count() uint64 {
	if r == nil {
		return 0
	}
	return r.count
}

// Events returns the retained events in chronological order, optionally
// filtered by category (empty = all) and by minimum time.
func (r *Recorder) Events(cat Category, since sim.Time) []Event {
	if !r.Enabled() {
		return nil
	}
	n := r.head
	if r.full {
		n = len(r.events)
	}
	out := make([]Event, 0, n)
	start := 0
	if r.full {
		start = r.head
	}
	for i := 0; i < n; i++ {
		e := r.events[(start+i)%len(r.events)]
		if cat != "" && e.Category != cat {
			continue
		}
		if e.At < since {
			continue
		}
		out = append(out, e)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Dump writes the retained events to w, one per line.
func (r *Recorder) Dump(w io.Writer, cat Category, since sim.Time) error {
	for _, e := range r.Events(cat, since) {
		if _, err := fmt.Fprintf(w, "%12v %-8s node=%-6d %s\n", e.At, e.Category, e.Node, e.Message); err != nil {
			return err
		}
	}
	return nil
}

// Summary returns per-category retained-event counts as a compact string.
func (r *Recorder) Summary() string {
	counts := map[Category]int{}
	for _, e := range r.Events("", 0) {
		counts[e.Category]++
	}
	cats := make([]string, 0, len(counts))
	for c := range counts {
		cats = append(cats, string(c))
	}
	sort.Strings(cats)
	parts := make([]string, 0, len(cats))
	for _, c := range cats {
		parts = append(parts, fmt.Sprintf("%s=%d", c, counts[Category(c)]))
	}
	return strings.Join(parts, " ")
}
