package store

import (
	"fmt"
	"slices"

	"vcloud/internal/vnet"
)

// rcopy is one member's copy of an object.
type rcopy struct {
	version Version
	data    []byte
}

// robj is the coordinator's record of one replicated object.
type robj struct {
	size    int
	version Version // highest version ever allocated
	acked   Version // highest version that reached its write quorum
	epoch   uint64  // per-key fencing high-water (Linearizable)
	copies  map[vnet.Addr]rcopy
	// placed is the key's current quorum set, ascending: the members the
	// latest write landed on (or repair's rebuild of it). Every member of
	// placed holds a version >= acked, so any R of them prove the last
	// acked write — strict reads count replies against placed, never
	// against stale ex-holders accumulated across partitions.
	placed []vnet.Addr
}

// Replicated is the whole-object quorum backend: N copies per key,
// writes acked at W placements, reads served from R replies, W+R > N.
// It runs at the coordinator (the controller) and tracks placements;
// byte movement is charged as counters, like the task subsystem.
type Replicated struct {
	cfg   Config
	view  View
	stats *Stats

	objects map[Key]*robj
	sess    sessions
	// highWater is the highest epoch any writer has presented; fenced
	// writes and repairs below it are refused (split-brain protection).
	highWater uint64
	// load counts copies per member, feeding PlaceDwell's tiebreak.
	load map[vnet.Addr]int

	rankScratch   []rankEntry
	keyScratch    []Key
	holderScratch []vnet.Addr
	placeScratch  []vnet.Addr
	rttScratch    []float64
}

// NewReplicated creates the quorum backend over the view.
func NewReplicated(cfg Config, view View, stats *Stats) (*Replicated, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if view == nil {
		return nil, fmt.Errorf("store: view must not be nil")
	}
	if stats == nil {
		return nil, fmt.Errorf("store: stats must not be nil")
	}
	return &Replicated{
		cfg:     cfg,
		view:    view,
		stats:   stats,
		objects: make(map[Key]*robj),
		sess:    make(sessions),
		load:    make(map[vnet.Addr]int),
	}, nil
}

// View implements Backend.
func (r *Replicated) View() View { return r.view }

// SetRetainOffline switches the churn model at runtime: true means
// offline holders are asleep and keep their copies (battery saving),
// false means offline is departure and repair drops their copies.
func (r *Replicated) SetRetainOffline(retain bool) { r.cfg.RetainOffline = retain }

// Stats implements Backend.
func (r *Replicated) Stats() *Stats { return r.stats }

// Accept fences an operation at the given epoch against the global
// high-water: it returns false (counting a stale write) when a higher
// epoch has written since. Epoch zero is the unfenced legacy path.
func (r *Replicated) Accept(epoch uint64) bool {
	if epoch == 0 {
		return true
	}
	if epoch < r.highWater {
		r.stats.StaleWrites.Inc()
		return false
	}
	r.highWater = epoch
	return true
}

// acceptKey fences an operation against one key's epoch high-water
// (Linearizable only). Reads also advance the key fence, so a write
// from an epoch older than any served read is refused afterwards.
func (r *Replicated) acceptKey(o *robj, epoch uint64, read bool) bool {
	if r.cfg.Consistency != Linearizable || epoch == 0 {
		return true
	}
	if epoch < o.epoch {
		if read {
			r.stats.StaleReads.Inc()
		} else {
			r.stats.StaleWrites.Inc()
		}
		return false
	}
	o.epoch = epoch
	return true
}

// Write implements Backend: version++, place on up to N ranked online
// members (current online holders first, so placement is sticky), ack
// at W placements.
func (r *Replicated) Write(req WriteReq) WriteAck {
	r.stats.Writes.Inc()
	if !r.Accept(req.Epoch) {
		return WriteAck{}
	}
	o := r.objects[req.Key]
	if o == nil {
		o = &robj{copies: make(map[vnet.Addr]rcopy)}
		r.objects[req.Key] = o
	}
	if !r.acceptKey(o, req.Epoch, false) {
		return WriteAck{}
	}
	size := req.Size
	if size == 0 {
		size = len(req.Data)
	}
	o.size = size
	o.version++
	placed := r.placeScratch[:0]
	// Sticky placement: online members already holding the key first.
	for _, a := range r.holdersOf(o) {
		if len(placed) >= r.cfg.N {
			break
		}
		if r.view.Online(a) {
			placed = append(placed, a)
		}
	}
	if len(placed) < r.cfg.N {
		held := make(map[vnet.Addr]bool, len(o.copies))
		for _, a := range placed {
			held[a] = true
		}
		for _, e := range rankOnline(&r.rankScratch, r.view, r.cfg.Placement, r.load, func(a vnet.Addr) bool { return held[a] }) {
			if len(placed) >= r.cfg.N {
				break
			}
			placed = append(placed, e.addr)
		}
	}
	r.placeScratch = placed
	for _, a := range placed {
		if _, had := o.copies[a]; !had {
			r.load[a]++
		}
		o.copies[a] = rcopy{version: o.version, data: req.Data}
		r.stats.BytesMoved.Add(size)
	}
	out := make([]vnet.Addr, len(placed))
	copy(out, placed)
	slices.Sort(out)
	o.placed = append(o.placed[:0], out...)
	ack := WriteAck{Version: o.version, Placed: out, Acked: len(out) >= r.cfg.W}
	if ack.Acked {
		o.acked = o.version
		r.stats.WriteAcks.Inc()
		r.sess.advance(req.Client, req.Key, o.version)
	}
	return ack
}

// Read implements Backend: gather replies from online holders, need R
// of them, serve the highest version seen. Latency is the R'th
// smallest holder RTT at the object size.
//
// Strict quorums (the default) count the R replies against the key's
// current placed set only: members outside it may hold versions
// predating the last acked write (sticky placement leaves stale copies
// behind when it cannot reuse an unreachable holder), and counting
// them would let a read quorum miss every acked copy. Sloppy mode
// accepts any R reachable copies instead, trading that guarantee for
// availability.
func (r *Replicated) Read(req ReadReq) (ReadResult, bool) {
	r.stats.Reads.Inc()
	o := r.objects[req.Key]
	if o == nil {
		return ReadResult{}, false
	}
	if !r.acceptKey(o, req.Epoch, true) {
		return ReadResult{}, false
	}
	best := Version(0)
	var data []byte
	rtts := r.rttScratch[:0]
	for _, a := range r.holdersOf(o) {
		if !r.view.Online(a) {
			continue
		}
		cp := o.copies[a]
		if cp.version > best {
			best, data = cp.version, cp.data
		}
		rtts = append(rtts, r.cfg.RTT(a, o.size))
	}
	r.rttScratch = rtts
	if len(rtts) < r.cfg.R {
		return ReadResult{}, false
	}
	if !r.cfg.Sloppy {
		quorum := 0
		for _, a := range o.placed {
			if _, has := o.copies[a]; has && r.view.Online(a) {
				quorum++
			}
		}
		if quorum < r.cfg.R {
			r.stats.QuorumStale.Inc()
			return ReadResult{}, false
		}
	}
	if r.cfg.Consistency >= Session && best < r.sess.watermark(req.Client, req.Key) {
		r.stats.SessionStale.Inc()
		return ReadResult{}, false
	}
	r.stats.ReadsOK.Inc()
	r.sess.advance(req.Client, req.Key, best)
	return ReadResult{
		Data:    data,
		Version: best,
		Latency: quantile(rtts, r.cfg.R),
		Replies: len(rtts),
	}, true
}

// Repair implements Backend: for every key (in sorted order), drop
// offline holders (unless RetainOffline), copy the best live version
// onto ranked online members until N live copies exist, then — with
// TrimSurplus — trim returned sleepers' surplus back to N, never
// discarding a copy newer than the best live one.
func (r *Replicated) Repair(req RepairReq) int {
	if !r.Accept(req.Epoch) {
		return 0
	}
	created := 0
	for _, k := range r.sortedKeys() {
		o := r.objects[k]
		live := 0
		maxLive := Version(0)
		for _, a := range r.holdersOf(o) {
			if r.view.Online(a) {
				live++
				if cp := o.copies[a]; cp.version > maxLive {
					maxLive = cp.version
				}
			} else if !r.cfg.RetainOffline {
				r.dropCopy(o, a)
			}
		}
		if live == 0 {
			continue // nothing reachable to copy from
		}
		if live < r.cfg.N {
			var src []byte
			for _, a := range r.holdersOf(o) {
				if r.view.Online(a) && o.copies[a].version == maxLive {
					src = o.copies[a].data
					break
				}
			}
			held := o.copies
			for _, e := range rankOnline(&r.rankScratch, r.view, r.cfg.Placement, r.load, func(a vnet.Addr) bool { _, has := held[a]; return has }) {
				if live >= r.cfg.N {
					break
				}
				o.copies[e.addr] = rcopy{version: maxLive, data: src}
				r.load[e.addr]++
				live++
				created++
				r.stats.ReReplicas.Inc()
				r.stats.BytesMoved.Add(o.size)
			}
		}
		// Re-anchor the quorum set on the repaired copies — but only when
		// that cannot lose an acked write: if every surviving copy of the
		// last acked version is unreachable, the old placed set stands and
		// reads keep refusing until one of its holders returns.
		if maxLive >= o.acked {
			r.rebuildPlaced(o, maxLive)
		}
		if r.cfg.RetainOffline && r.cfg.TrimSurplus && len(o.copies) > r.cfg.N {
			r.trim(o, live, maxLive)
		}
	}
	return created
}

// rebuildPlaced resets the key's quorum set after repair to the holders
// of version v (>= the acked version): online holders first, then
// offline members of the old placed set still holding v (a returning
// sleeper should keep counting toward read quorums), capped at N,
// ascending.
func (r *Replicated) rebuildPlaced(o *robj, v Version) {
	np := make([]vnet.Addr, 0, r.cfg.N)
	for pass := 0; pass < 2; pass++ {
		for _, a := range r.holdersOf(o) {
			if len(np) >= r.cfg.N {
				break
			}
			if o.copies[a].version != v {
				continue
			}
			on := r.view.Online(a)
			if pass == 0 && on {
				np = append(np, a)
			}
			if pass == 1 && !on && slices.Contains(o.placed, a) && !slices.Contains(np, a) {
				np = append(np, a)
			}
		}
	}
	slices.Sort(np)
	o.placed = np
}

// trim drops surplus holders beyond N, offline holders first, then
// highest addresses — but never a copy strictly newer than the best
// live version (it may be the only survivor of an acked write).
func (r *Replicated) trim(o *robj, live int, maxLive Version) {
	holders := slices.Clone(r.holdersOf(o))
	slices.SortFunc(holders, func(x, y vnet.Addr) int {
		ox, oy := r.view.Online(x), r.view.Online(y)
		if ox != oy {
			if ox {
				return 1 // offline first
			}
			return -1
		}
		switch {
		case x > y:
			return -1
		case x < y:
			return 1
		}
		return 0
	})
	for _, a := range holders {
		if len(o.copies) <= r.cfg.N {
			break
		}
		if o.copies[a].version > maxLive {
			continue
		}
		// A strict quorum never trims its own placed set: reads count
		// replies against it.
		if !r.cfg.Sloppy && slices.Contains(o.placed, a) {
			continue
		}
		on := r.view.Online(a)
		if live > r.cfg.N || !on {
			if on {
				live--
			}
			r.dropCopy(o, a)
		}
	}
}

// Forget implements Backend: the member departed for good, its copies
// are gone.
func (r *Replicated) Forget(a vnet.Addr) int {
	dropped := 0
	for _, k := range r.sortedKeys() {
		o := r.objects[k]
		if _, has := o.copies[a]; has {
			r.dropCopy(o, a)
			dropped++
		}
	}
	return dropped
}

// Delete removes the key outright (the legacy Store overwrite path).
func (r *Replicated) Delete(k Key) {
	o := r.objects[k]
	if o == nil {
		return
	}
	for _, a := range r.holdersOf(o) {
		r.dropCopy(o, a)
	}
	delete(r.objects, k)
}

// Holders implements Backend.
func (r *Replicated) Holders(k Key) []vnet.Addr {
	o := r.objects[k]
	if o == nil {
		return nil
	}
	return slices.Clone(r.holdersOf(o))
}

// Durable implements Backend: the best version any surviving copy
// holds, online or not.
func (r *Replicated) Durable(k Key) (Version, bool) {
	o := r.objects[k]
	if o == nil || len(o.copies) == 0 {
		return 0, false
	}
	best := Version(0)
	for _, cp := range o.copies {
		if cp.version > best {
			best = cp.version
		}
	}
	return best, true
}

func (r *Replicated) dropCopy(o *robj, a vnet.Addr) {
	delete(o.copies, a)
	if r.load[a] > 0 {
		r.load[a]--
	}
}

// holdersOf returns o's holder addresses ascending (shared scratch,
// valid until the next call).
func (r *Replicated) holdersOf(o *robj) []vnet.Addr {
	hs := r.holderScratch[:0]
	for a := range o.copies {
		hs = append(hs, a)
	}
	slices.Sort(hs)
	r.holderScratch = hs
	return hs
}

// sortedKeys returns the object keys ascending (shared scratch).
func (r *Replicated) sortedKeys() []Key {
	ks := r.keyScratch[:0]
	for k := range r.objects {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	r.keyScratch = ks
	return ks
}
