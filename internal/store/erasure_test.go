package store

import (
	"bytes"
	"testing"
)

func mustEncode(t *testing.T, k, m int, data []byte) [][]byte {
	t.Helper()
	shards, err := Encode(k, m, data)
	if err != nil {
		t.Fatalf("Encode(%d,%d,%d bytes): %v", k, m, len(data), err)
	}
	if len(shards) != k+m {
		t.Fatalf("Encode returned %d shards, want %d", len(shards), k+m)
	}
	return shards
}

func TestErasureRoundTripAllErasures(t *testing.T) {
	data := []byte("the vehicular cloud stores this object across churning members")
	for _, km := range [][2]int{{1, 0}, {1, 3}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 4}} {
		k, m := km[0], km[1]
		orig := mustEncode(t, k, m, data)
		// Erase every possible single shard, and for m >= 2 a sliding
		// window of m shards — the worst legal loss.
		for lo := 0; lo <= k+m-m || lo == 0; lo++ {
			shards := make([][]byte, k+m)
			for i := range shards {
				shards[i] = bytes.Clone(orig[i])
			}
			for i := lo; i < lo+m && i < k+m; i++ {
				shards[i] = nil
			}
			if err := Decode(k, m, shards); err != nil {
				t.Fatalf("(%d,%d) erasing [%d,%d): %v", k, m, lo, lo+m, err)
			}
			for i := range shards {
				if !bytes.Equal(shards[i], orig[i]) {
					t.Fatalf("(%d,%d) erasing [%d,%d): shard %d differs after decode", k, m, lo, lo+m, i)
				}
			}
			got, err := Join(k, shards, len(data))
			if err != nil {
				t.Fatalf("Join: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("(%d,%d): joined data differs", k, m)
			}
			if m == 0 {
				break
			}
		}
	}
}

func TestErasureTooManyLosses(t *testing.T) {
	shards := mustEncode(t, 4, 2, []byte("abcdefgh"))
	shards[0], shards[2], shards[5] = nil, nil, nil // 3 losses > m=2
	if err := Decode(4, 2, shards); err == nil {
		t.Fatal("Decode reconstructed from fewer than k shards")
	}
}

func TestErasureDeterministic(t *testing.T) {
	data := []byte{0, 1, 2, 3, 255, 254, 100, 7, 7, 7, 9}
	a := mustEncode(t, 3, 2, data)
	b := mustEncode(t, 3, 2, data)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("shard %d differs between identical encodes", i)
		}
	}
}

func TestErasureEmptyAndTiny(t *testing.T) {
	for _, data := range [][]byte{nil, {}, {42}, {1, 2}} {
		shards := mustEncode(t, 4, 2, data)
		shards[1] = nil
		shards[4] = nil
		if err := Decode(4, 2, shards); err != nil {
			t.Fatalf("%d bytes: %v", len(data), err)
		}
		got, err := Join(4, shards, len(data))
		if err != nil {
			t.Fatalf("Join %d bytes: %v", len(data), err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%d bytes: round trip differs", len(data))
		}
	}
}

func TestErasureParamValidation(t *testing.T) {
	if _, err := Encode(0, 2, []byte("x")); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Encode(1, -1, []byte("x")); err == nil {
		t.Error("m=-1 accepted")
	}
	if _, err := Encode(200, 100, []byte("x")); err == nil {
		t.Error("k+m>255 accepted")
	}
	if err := Decode(4, 2, make([][]byte, 3)); err == nil {
		t.Error("wrong shard-slot count accepted")
	}
	shards := mustEncode(t, 2, 1, []byte("abcd"))
	shards[1] = shards[1][:1]
	if err := Decode(2, 1, shards); err == nil {
		t.Error("ragged shard lengths accepted")
	}
}

func TestGFTables(t *testing.T) {
	// Field sanity: a·inv(a) == 1 for every nonzero a, and
	// multiplication distributes over a spot-check triple.
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a*inv(a) = %d for a=%d", got, a)
		}
	}
	x, y, z := byte(0x53), byte(0xca), byte(0x11)
	if gfMul(x, y^z) != gfMul(x, y)^gfMul(x, z) {
		t.Error("multiplication does not distribute over addition")
	}
}
