package store

import (
	"bytes"
	"slices"
	"testing"

	"vcloud/internal/vnet"
)

// testView is a mutable View for unit tests.
type testView struct {
	members []vnet.Addr
	offline map[vnet.Addr]bool
	dwell   map[vnet.Addr]float64
	epoch   uint64
}

func (v *testView) Members() []vnet.Addr    { return v.members }
func (v *testView) Online(a vnet.Addr) bool { return !v.offline[a] }
func (v *testView) Dwell(a vnet.Addr) float64 {
	if d, ok := v.dwell[a]; ok {
		return d
	}
	return 1e9
}
func (v *testView) Epoch() uint64 { return v.epoch }

func newTestView(n int) *testView {
	v := &testView{offline: map[vnet.Addr]bool{}, dwell: map[vnet.Addr]float64{}}
	for i := 0; i < n; i++ {
		v.members = append(v.members, vnet.Addr(i))
	}
	return v
}

func TestConfigValidate(t *testing.T) {
	c := Config{}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.N != 3 || c.W != 2 || c.R != 2 || c.K != 4 || c.M != 2 || c.FragAck != 6 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	bad := []Config{
		{N: 3, W: 1, R: 1},       // W+R <= N
		{N: 2, W: 3, R: 1},       // W > N
		{K: 1, M: 300},           // k+m > 255
		{K: 4, M: 2, FragAck: 2}, // FragAck <= M
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestReplicatedQuorumBasics(t *testing.T) {
	v := newTestView(5)
	st := &Stats{}
	r, err := NewReplicated(Config{N: 3, W: 2, R: 2}, v, st)
	if err != nil {
		t.Fatal(err)
	}
	ack := Put(r, "c1", "k", []byte("hello"))
	if !ack.Acked || ack.Version != 1 || len(ack.Placed) != 3 {
		t.Fatalf("write: %+v", ack)
	}
	res, ok := Get(r, "c1", "k")
	if !ok || res.Version != 1 || !bytes.Equal(res.Data, []byte("hello")) {
		t.Fatalf("read: %+v ok=%v", res, ok)
	}
	if res.Replies < 2 || res.Latency <= 0 {
		t.Fatalf("read replies/latency: %+v", res)
	}
	// Knock out all but one holder: R=2 unreachable, read refused.
	holders := r.Holders("k")
	v.offline[holders[0]] = true
	v.offline[holders[1]] = true
	if _, ok := Get(r, "c1", "k"); ok {
		t.Fatal("read served below quorum")
	}
	// Repair tops back up to N from the remaining copy.
	if created := Fix(r); created != 2 {
		t.Fatalf("repair created %d, want 2", created)
	}
	if res, ok := Get(r, "c1", "k"); !ok || res.Version != 1 {
		t.Fatalf("read after repair: %+v ok=%v", res, ok)
	}
	if st.ReReplicas.Value() != 2 {
		t.Errorf("ReReplicas = %d, want 2", st.ReReplicas.Value())
	}
}

func TestReplicatedWriteBelowQuorumNotAcked(t *testing.T) {
	v := newTestView(3)
	v.offline[0], v.offline[1] = true, true
	st := &Stats{}
	r, _ := NewReplicated(Config{N: 3, W: 2, R: 2}, v, st)
	ack := Put(r, "", "k", []byte("x"))
	if ack.Acked {
		t.Fatalf("acked with a single online member: %+v", ack)
	}
	if len(ack.Placed) != 1 {
		t.Fatalf("placed %v, want exactly the one online member", ack.Placed)
	}
	if st.WriteAcks.Value() != 0 {
		t.Error("WriteAcks counted an un-acked write")
	}
}

func TestSessionMonotonicReads(t *testing.T) {
	v := newTestView(5)
	st := &Stats{}
	r, _ := NewReplicated(Config{N: 3, W: 2, R: 2, Consistency: Session}, v, st)
	Put(r, "c1", "k", []byte("v1"))
	Put(r, "c1", "k", []byte("v2")) // version 2 on same holders
	if res, ok := Get(r, "c1", "k"); !ok || res.Version != 2 {
		t.Fatalf("read: %+v ok=%v", res, ok)
	}
	// Strand the client on a stale quorum: force version 2's holders
	// offline, repair from nothing — simulate by marking holders
	// offline so only sub-quorum remains; reads must refuse rather
	// than serve version 1 to c1.
	for _, a := range r.Holders("k") {
		v.offline[a] = true
	}
	if _, ok := Get(r, "c1", "k"); ok {
		t.Fatal("served a read with every holder offline")
	}
	// An anonymous client has no watermark and is also refused here
	// (no quorum), so bring back one stale holder scenario instead:
	// manually regress the object to test the watermark path.
	o := r.objects["k"]
	for _, a := range r.Holders("k") {
		v.offline[a] = false
		o.copies[a] = rcopy{version: 1, data: []byte("v1")}
	}
	if _, ok := Get(r, "c1", "k"); ok {
		t.Fatal("session client read went backwards")
	}
	if st.SessionStale.Value() == 0 {
		t.Error("SessionStale not counted")
	}
	if _, ok := Get(r, "", "k"); !ok {
		t.Fatal("anonymous client should be served the stale version")
	}
}

func TestLinearizableEpochFencing(t *testing.T) {
	v := newTestView(5)
	st := &Stats{}
	r, _ := NewReplicated(Config{N: 3, W: 2, R: 2, Consistency: Linearizable}, v, st)
	if ack := r.Write(WriteReq{Key: "k", Data: []byte("a"), Epoch: 5}); !ack.Acked {
		t.Fatalf("epoch-5 write refused: %+v", ack)
	}
	// A superseded controller (epoch 3) must not write or read.
	if ack := r.Write(WriteReq{Key: "k", Data: []byte("b"), Epoch: 3}); ack.Acked {
		t.Fatal("stale-epoch write accepted")
	}
	if st.StaleWrites.Value() != 1 {
		t.Errorf("StaleWrites = %d, want 1", st.StaleWrites.Value())
	}
	if _, ok := r.Read(ReadReq{Key: "k", Epoch: 6}); !ok {
		t.Fatal("fresh-epoch read refused")
	}
	// The epoch-6 read fences the key: an epoch-5 write is now stale.
	if ack := r.Write(WriteReq{Key: "k", Data: []byte("c"), Epoch: 5}); ack.Acked {
		t.Fatal("write below the key's read fence accepted")
	}
	if _, ok := r.Read(ReadReq{Key: "k", Epoch: 4}); ok {
		t.Fatal("stale-epoch read served")
	}
	if st.StaleReads.Value() == 0 {
		t.Error("StaleReads not counted")
	}
	// Repair from a stale epoch is refused outright.
	v.offline[vnet.Addr(0)] = true
	if n := r.Repair(RepairReq{Epoch: 2}); n != 0 {
		t.Fatalf("stale-epoch repair created %d copies", n)
	}
}

func TestDwellPlacementPrefersLongStayers(t *testing.T) {
	v := newTestView(6)
	// Members 0..2 are short-dwell (tier 0/1), 3..5 long (tier 3).
	v.dwell[0], v.dwell[1], v.dwell[2] = 10, 20, 40
	v.dwell[3], v.dwell[4], v.dwell[5] = 700, 800, 900
	st := &Stats{}
	r, _ := NewReplicated(Config{N: 3, W: 2, R: 2, Placement: PlaceDwell}, v, st)
	ack := Put(r, "", "k", []byte("x"))
	want := []vnet.Addr{3, 4, 5}
	if !slices.Equal(ack.Placed, want) {
		t.Fatalf("placed %v, want the long-dwell members %v", ack.Placed, want)
	}
	// Legacy order ignores dwell entirely.
	r2, _ := NewReplicated(Config{N: 3, W: 2, R: 2, Placement: PlaceLowestAddr}, v, st)
	ack = Put(r2, "", "k", []byte("x"))
	if !slices.Equal(ack.Placed, []vnet.Addr{0, 1, 2}) {
		t.Fatalf("legacy placement %v, want [0 1 2]", ack.Placed)
	}
}

func TestErasureCodedBackend(t *testing.T) {
	v := newTestView(8)
	st := &Stats{}
	e, err := NewErasureCoded(Config{K: 4, M: 2}, v, st)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("erasure-coded object payload spread across the fleet")
	ack := Put(e, "c1", "k", payload)
	if !ack.Acked || len(ack.Placed) != 6 {
		t.Fatalf("write: %+v", ack)
	}
	res, ok := Get(e, "c1", "k")
	if !ok || res.Version != 1 || !bytes.Equal(res.Data, payload) {
		t.Fatalf("read: ok=%v version=%d data=%q", ok, res.Version, res.Data)
	}
	// Lose M members: still readable; M+1: not reconstructible live.
	v.offline[ack.Placed[0]] = true
	v.offline[ack.Placed[1]] = true
	if res, ok := Get(e, "c1", "k"); !ok || !bytes.Equal(res.Data, payload) {
		t.Fatalf("read after M losses: ok=%v", ok)
	}
	v.offline[ack.Placed[2]] = true
	if _, ok := Get(e, "c1", "k"); ok {
		t.Fatal("read served with only K-1 fragments live")
	}
	// Repair regenerates the missing indices onto spare members — but
	// only once at least K fragments are live again.
	v.offline[ack.Placed[2]] = false
	created := Fix(e)
	if created < 2 {
		t.Fatalf("repair created %d fragments, want >= 2", created)
	}
	if res, ok := Get(e, "c1", "k"); !ok || !bytes.Equal(res.Data, payload) {
		t.Fatalf("read after repair: ok=%v", ok)
	}
	// Departed members lose fragments permanently.
	if dropped := e.Forget(ack.Placed[3]); dropped == 0 {
		t.Fatal("Forget dropped nothing")
	}
	if ver, ok := e.Durable("k"); !ok || ver != 1 {
		t.Fatalf("Durable after Forget: %d %v", ver, ok)
	}
}

func TestErasureDurableAcrossTotalOutage(t *testing.T) {
	v := newTestView(6)
	st := &Stats{}
	e, _ := NewErasureCoded(Config{K: 3, M: 2, FragAck: 5}, v, st)
	ack := Put(e, "", "k", []byte("survives crashes"))
	if !ack.Acked {
		t.Fatalf("write not acked: %+v", ack)
	}
	for _, a := range v.members {
		v.offline[a] = true
	}
	if _, ok := Get(e, "", "k"); ok {
		t.Fatal("read served during total outage")
	}
	// Crashed members still hold their fragments: durable.
	if ver, ok := e.Durable("k"); !ok || ver != 1 {
		t.Fatalf("Durable during outage: %d %v", ver, ok)
	}
	for _, a := range v.members {
		v.offline[a] = false
	}
	if res, ok := Get(e, "", "k"); !ok || !bytes.Equal(res.Data, []byte("survives crashes")) {
		t.Fatalf("read after recovery: ok=%v", ok)
	}
}

func TestForgetThenRepairRestoresDurability(t *testing.T) {
	v := newTestView(6)
	st := &Stats{}
	r, _ := NewReplicated(Config{N: 3, W: 2, R: 2, RetainOffline: true}, v, st)
	ack := Put(r, "", "k", []byte("x"))
	// One holder departs for good: its copy is gone, repair re-creates
	// it elsewhere from the survivors.
	r.Forget(ack.Placed[0])
	if len(r.Holders("k")) != 2 {
		t.Fatalf("holders after Forget: %v", r.Holders("k"))
	}
	if created := Fix(r); created != 1 {
		t.Fatalf("repair created %d, want 1", created)
	}
	if ver, ok := r.Durable("k"); !ok || ver != 1 {
		t.Fatalf("Durable: %d %v", ver, ok)
	}
}

func TestReplicatedEventualAllowsBackwardReads(t *testing.T) {
	v := newTestView(5)
	st := &Stats{}
	r, _ := NewReplicated(Config{N: 3, W: 3, R: 1, Consistency: Eventual}, v, st)
	Put(r, "c", "k", []byte("v1"))
	Put(r, "c", "k", []byte("v2"))
	o := r.objects["k"]
	for _, a := range r.Holders("k") {
		o.copies[a] = rcopy{version: 1, data: []byte("v1")}
	}
	if res, ok := Get(r, "c", "k"); !ok || res.Version != 1 {
		t.Fatalf("eventual read should serve the stale version: %+v ok=%v", res, ok)
	}
}

// TestErasureUnackedOverwriteKeepsAckedDurable pins the overwrite
// hazard: a write that cannot reach its quorum replaces reachable
// members' fragments, but it must not destroy their fragments of the
// version the service already acknowledged — an acked write may only
// lose durability to member departures, never to a failed overwrite.
func TestErasureUnackedOverwriteKeepsAckedDurable(t *testing.T) {
	v := newTestView(6)
	st := &Stats{}
	e, err := NewErasureCoded(Config{K: 4, M: 2}, v, st)
	if err != nil {
		t.Fatal(err)
	}
	ack := PutSized(e, "c", "k", 4096)
	if !ack.Acked || len(ack.Placed) != 6 {
		t.Fatalf("write: %+v", ack)
	}
	// Partition: only 3 members reachable — the overwrite lands all six
	// fragment indices on them and cannot reach its FragAck=6 quorum.
	for _, a := range ack.Placed[3:] {
		v.offline[a] = true
	}
	if ack2 := PutSized(e, "c", "k", 4096); ack2.Acked {
		t.Fatalf("overwrite acked below quorum: %+v", ack2)
	}
	// Two of the overwritten members depart for good. The unacked v2
	// is now short of K distinct indices; v1 must still reconstruct
	// from the retained fragment on the third plus the three crashed
	// (not departed) holders — 4 of 6 placed members survive.
	e.Forget(ack.Placed[0])
	e.Forget(ack.Placed[1])
	if ver, ok := e.Durable("k"); !ok || ver < ack.Version {
		t.Fatalf("acked v%d lost to unacked overwrite: durable=%d ok=%v", ack.Version, ver, ok)
	}
}
