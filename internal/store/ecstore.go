package store

import (
	"fmt"
	"slices"

	"vcloud/internal/vnet"
)

// frag is one erasure-code fragment held by a member: shard index plus
// the version it belongs to.
type frag struct {
	version Version
	index   int
	data    []byte
}

// ecobj is the coordinator's record of one erasure-coded object.
type ecobj struct {
	size    int // modeled object bytes
	length  int // exact payload length for Join (when Data was given)
	version Version
	acked   Version // highest version that reached FragAck members
	epoch   uint64
	// frags maps member -> fragments held (normally one; more when the
	// fleet is smaller than K+M).
	frags map[vnet.Addr][]frag
}

// ErasureCoded is the (K, M) Reed–Solomon backend: each object becomes
// K data + M parity fragments spread over distinct members,
// dwell-weighted so long-staying vehicles attract fragments first. Any
// K distinct fragment indices reconstruct, so reads parallelize (the
// latency is the K'th smallest member RTT at fragment size) and an
// acked write survives up to M member losses at (K+M)/K overhead.
type ErasureCoded struct {
	cfg   Config
	view  View
	stats *Stats

	objects   map[Key]*ecobj
	sess      sessions
	highWater uint64
	load      map[vnet.Addr]int

	rankScratch   []rankEntry
	keyScratch    []Key
	holderScratch []vnet.Addr
	rttScratch    []float64
}

// NewErasureCoded creates the erasure-coded backend over the view.
func NewErasureCoded(cfg Config, view View, stats *Stats) (*ErasureCoded, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if view == nil {
		return nil, fmt.Errorf("store: view must not be nil")
	}
	if stats == nil {
		return nil, fmt.Errorf("store: stats must not be nil")
	}
	return &ErasureCoded{
		cfg:     cfg,
		view:    view,
		stats:   stats,
		objects: make(map[Key]*ecobj),
		sess:    make(sessions),
		load:    make(map[vnet.Addr]int),
	}, nil
}

// View implements Backend.
func (e *ErasureCoded) View() View { return e.view }

// Stats implements Backend.
func (e *ErasureCoded) Stats() *Stats { return e.stats }

// fragSize is the modeled byte size of one fragment of the object.
func (e *ErasureCoded) fragSize(o *ecobj) int {
	return (o.size + e.cfg.K - 1) / e.cfg.K
}

// accept fences against the global high-water, like Replicated.Accept.
func (e *ErasureCoded) accept(epoch uint64) bool {
	if epoch == 0 {
		return true
	}
	if epoch < e.highWater {
		e.stats.StaleWrites.Inc()
		return false
	}
	e.highWater = epoch
	return true
}

func (e *ErasureCoded) acceptKey(o *ecobj, epoch uint64, read bool) bool {
	if e.cfg.Consistency != Linearizable || epoch == 0 {
		return true
	}
	if epoch < o.epoch {
		if read {
			e.stats.StaleReads.Inc()
		} else {
			e.stats.StaleWrites.Inc()
		}
		return false
	}
	o.epoch = epoch
	return true
}

// Write implements Backend: encode into K+M fragments, assign fragment
// i to the i%len(ranked)'th dwell-ranked online member (so with enough
// members each holds at most one fragment and short-dwell vehicles
// hold none), ack at FragAck placements.
func (e *ErasureCoded) Write(req WriteReq) WriteAck {
	e.stats.Writes.Inc()
	if !e.accept(req.Epoch) {
		return WriteAck{}
	}
	o := e.objects[req.Key]
	if o == nil {
		o = &ecobj{frags: make(map[vnet.Addr][]frag)}
		e.objects[req.Key] = o
	}
	if !e.acceptKey(o, req.Epoch, false) {
		return WriteAck{}
	}
	size := req.Size
	if size == 0 {
		size = len(req.Data)
	}
	o.size = size
	o.length = len(req.Data)
	o.version++
	var shards [][]byte
	if req.Data != nil {
		var err error
		shards, err = Encode(e.cfg.K, e.cfg.M, req.Data)
		if err != nil {
			// cfg.Validate bounds K and M; unreachable in practice.
			return WriteAck{}
		}
	}
	ranked := rankOnline(&e.rankScratch, e.view, e.cfg.Placement, e.load, nil)
	if len(ranked) == 0 {
		return WriteAck{Version: o.version}
	}
	total := e.cfg.K + e.cfg.M
	fsz := e.fragSize(o)
	assigned := make(map[vnet.Addr][]frag, min(total, len(ranked)))
	for i := 0; i < total; i++ {
		// Round-robin over the dwell ranking: distinct members hold
		// disjoint index sets, and with enough members each holds one.
		a := ranked[i%len(ranked)].addr
		f := frag{version: o.version, index: i}
		if shards != nil {
			f.data = shards[i]
		}
		assigned[a] = append(assigned[a], f)
		e.stats.BytesMoved.Add(fsz)
	}
	placed := make([]vnet.Addr, 0, len(assigned))
	for a := range assigned {
		placed = append(placed, a)
	}
	slices.Sort(placed)
	for _, a := range placed {
		if _, had := o.frags[a]; !had {
			e.load[a]++
		}
		// Replace the member's stale fragments, but keep its fragments of
		// the last acked version: until the new write reaches its own
		// quorum, destroying them could drop the acked version below K
		// surviving fragments — an acknowledged write must never lose
		// durability to an unacknowledged overwrite.
		kept := assigned[a]
		for _, f := range o.frags[a] {
			if f.version == o.acked {
				kept = append(kept, f)
			}
		}
		o.frags[a] = kept
	}
	ack := WriteAck{Version: o.version, Placed: placed, Acked: len(placed) >= e.cfg.FragAck}
	if ack.Acked {
		o.acked = o.version
		e.stats.WriteAcks.Inc()
		e.sess.advance(req.Client, req.Key, o.version)
	}
	return ack
}

// Read implements Backend: the best version with at least K distinct
// fragment indices on online members is served; latency is the K'th
// smallest RTT at fragment size among its contributors (fragments
// transfer in parallel — the erasure-coding read advantage).
func (e *ErasureCoded) Read(req ReadReq) (ReadResult, bool) {
	e.stats.Reads.Inc()
	o := e.objects[req.Key]
	if o == nil {
		return ReadResult{}, false
	}
	if !e.acceptKey(o, req.Epoch, true) {
		return ReadResult{}, false
	}
	best, contributors := e.bestVersion(o, true)
	if best == 0 {
		return ReadResult{}, false
	}
	if !e.cfg.Sloppy && best < o.acked {
		// The reachable fragments only reconstruct a version older than
		// the last acked write: refuse rather than regress.
		e.stats.QuorumStale.Inc()
		return ReadResult{}, false
	}
	if e.cfg.Consistency >= Session && best < e.sess.watermark(req.Client, req.Key) {
		e.stats.SessionStale.Inc()
		return ReadResult{}, false
	}
	fsz := e.fragSize(o)
	rtts := e.rttScratch[:0]
	for _, a := range contributors {
		rtts = append(rtts, e.cfg.RTT(a, fsz))
	}
	e.rttScratch = rtts
	var data []byte
	if best == o.version && o.length > 0 {
		shards := make([][]byte, e.cfg.K+e.cfg.M)
		for _, a := range contributors {
			for _, f := range o.frags[a] {
				if f.version == best && f.data != nil {
					shards[f.index] = f.data
				}
			}
		}
		if err := Decode(e.cfg.K, e.cfg.M, shards); err == nil {
			data, _ = Join(e.cfg.K, shards, o.length)
		}
	}
	e.stats.ReadsOK.Inc()
	e.sess.advance(req.Client, req.Key, best)
	return ReadResult{
		Data:    data,
		Version: best,
		Latency: quantile(rtts, min(e.cfg.K, len(rtts))),
		Replies: len(rtts),
	}, true
}

// hasData reports whether any fragment of version v carries payload.
func (e *ErasureCoded) hasData(o *ecobj, v Version) bool {
	for _, a := range e.holdersOf(o) {
		for _, f := range o.frags[a] {
			if f.version == v && f.data != nil {
				return true
			}
		}
	}
	return false
}

// bestVersion finds the highest version with >= K distinct fragment
// indices among holders (liveOnly restricts to online members) and the
// ascending member list contributing to it.
func (e *ErasureCoded) bestVersion(o *ecobj, liveOnly bool) (Version, []vnet.Addr) {
	byVersion := make(map[Version]map[int]bool)
	for _, a := range e.holdersOf(o) {
		if liveOnly && !e.view.Online(a) {
			continue
		}
		for _, f := range o.frags[a] {
			m := byVersion[f.version]
			if m == nil {
				m = make(map[int]bool)
				byVersion[f.version] = m
			}
			m[f.index] = true
		}
	}
	best := Version(0)
	for v, idx := range byVersion {
		if len(idx) >= e.cfg.K && v > best {
			best = v
		}
	}
	if best == 0 {
		return 0, nil
	}
	var contributors []vnet.Addr
	for _, a := range e.holdersOf(o) {
		if liveOnly && !e.view.Online(a) {
			continue
		}
		for _, f := range o.frags[a] {
			if f.version == best {
				contributors = append(contributors, a)
				break
			}
		}
	}
	return best, contributors
}

// Repair implements Backend: for each key (sorted), when the best live
// version is reconstructible but some of its K+M fragment indices have
// no live holder, regenerate the missing fragments and place them on
// ranked live members that hold none of the key.
func (e *ErasureCoded) Repair(req RepairReq) int {
	if !e.accept(req.Epoch) {
		return 0
	}
	created := 0
	for _, k := range e.sortedKeys() {
		o := e.objects[k]
		if !e.cfg.RetainOffline {
			for _, a := range e.holdersOf(o) {
				if !e.view.Online(a) {
					e.dropFrags(o, a)
				}
			}
		}
		best, _ := e.bestVersion(o, true)
		if best == 0 {
			continue // not reconstructible from live members
		}
		liveIdx := make(map[int]bool)
		for _, a := range e.holdersOf(o) {
			if !e.view.Online(a) {
				continue
			}
			for _, f := range o.frags[a] {
				if f.version == best {
					liveIdx[f.index] = true
				}
			}
		}
		total := e.cfg.K + e.cfg.M
		if len(liveIdx) >= total {
			continue
		}
		// Regenerate payload shards when the object carries data.
		var shards [][]byte
		if e.hasData(o, best) {
			shards = make([][]byte, total)
			for _, a := range e.holdersOf(o) {
				if !e.view.Online(a) {
					continue
				}
				for _, f := range o.frags[a] {
					if f.version == best && f.data != nil {
						shards[f.index] = f.data
					}
				}
			}
			if err := Decode(e.cfg.K, e.cfg.M, shards); err != nil {
				shards = nil
			}
		}
		holdsKey := func(a vnet.Addr) bool {
			for _, f := range o.frags[a] {
				if f.version == best {
					return true
				}
			}
			return false
		}
		ranked := rankOnline(&e.rankScratch, e.view, e.cfg.Placement, e.load, holdsKey)
		fsz := e.fragSize(o)
		next := 0
		for i := 0; i < total; i++ {
			if liveIdx[i] {
				continue
			}
			if next >= len(ranked) {
				break // every eligible member already holds the key
			}
			a := ranked[next].addr
			next++
			f := frag{version: best, index: i}
			if shards != nil {
				f.data = shards[i]
			}
			if _, had := o.frags[a]; !had {
				e.load[a]++
			}
			o.frags[a] = append(o.frags[a], f)
			created++
			e.stats.ReReplicas.Inc()
			e.stats.BytesMoved.Add(fsz)
		}
	}
	return created
}

// Forget implements Backend.
func (e *ErasureCoded) Forget(a vnet.Addr) int {
	dropped := 0
	for _, k := range e.sortedKeys() {
		o := e.objects[k]
		if fs, has := o.frags[a]; has {
			dropped += len(fs)
			e.dropFrags(o, a)
		}
	}
	return dropped
}

// Holders implements Backend.
func (e *ErasureCoded) Holders(k Key) []vnet.Addr {
	o := e.objects[k]
	if o == nil {
		return nil
	}
	return slices.Clone(e.holdersOf(o))
}

// Durable implements Backend: the best version reconstructible from
// all surviving fragments, reachable or not.
func (e *ErasureCoded) Durable(k Key) (Version, bool) {
	o := e.objects[k]
	if o == nil {
		return 0, false
	}
	best, _ := e.bestVersion(o, false)
	return best, best != 0
}

func (e *ErasureCoded) dropFrags(o *ecobj, a vnet.Addr) {
	delete(o.frags, a)
	if e.load[a] > 0 {
		e.load[a]--
	}
}

func (e *ErasureCoded) holdersOf(o *ecobj) []vnet.Addr {
	hs := e.holderScratch[:0]
	for a := range o.frags {
		hs = append(hs, a)
	}
	slices.Sort(hs)
	e.holderScratch = hs
	return hs
}

func (e *ErasureCoded) sortedKeys() []Key {
	ks := e.keyScratch[:0]
	for k := range e.objects {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	e.keyScratch = ks
	return ks
}
