// Package store is the vehicular data-storage service: a replicated
// key-value/object layer whose storage nodes are the churning members
// of a vehicular cloud (the §III.A data-availability challenge, after
// Tseng et al.'s "cars as storage nodes" design).
//
// Two backends implement the same Backend interface:
//
//   - Replicated keeps N whole copies per key and acknowledges a write
//     once W copies are placed; reads gather R replies, so W+R > N
//     gives quorum intersection (every read quorum overlaps every
//     acked write quorum in at least one holder of the new version).
//   - ErasureCoded splits each object into K data + M parity fragments
//     with a Reed–Solomon code over GF(2^8); any K distinct fragments
//     reconstruct the object, so the service survives M losses at
//     ~(K+M)/K storage overhead instead of N×.
//
// Three consistency levels are offered per Config.Consistency:
// eventual (any reachable copy serves), session (a client's reads
// never go backwards relative to its own watermark vector), and
// linearizable-per-key (writes and reads are fenced through the
// controller epochs of internal/vcloud/epoch.go: a superseded epoch's
// operations are refused, so per key there is a single serial order).
//
// Placement is dwell-weighted: members predicted to stay longer
// (mobility.DwellTier) attract fragments first, short-dwell vehicles
// get fewer or none. Repair re-replicates under-replicated keys from
// surviving copies; the vehicular-cloud controller drives it on member
// expiry and on partition-heal merges (the PR 3 anti-entropy path).
//
// Everything is deterministic: no wall clock, no global randomness, and
// all map iterations that produce effects run in sorted key order.
package store

import (
	"fmt"
	"math"
	"slices"

	"vcloud/internal/metrics"
	"vcloud/internal/mobility"
	"vcloud/internal/vnet"
)

// Key identifies a stored object.
type Key string

// ClientID identifies a session client (for monotonic-read tracking).
// The empty ID is an anonymous client with no session state.
type ClientID string

// Version orders the writes of one key. Versions are allocated by the
// backend, strictly increasing per key.
type Version uint64

// Consistency selects the guarantee a backend enforces on reads.
type Consistency int

const (
	// Eventual serves any reachable copy; reads may go backwards.
	Eventual Consistency = iota
	// Session adds per-client monotonic reads: the backend tracks a
	// version watermark vector per client and refuses a read that would
	// return an older version than the client has already observed
	// (counted in Stats.SessionStale).
	Session
	// Linearizable adds per-key epoch fencing on top of Session: writes
	// and reads carry the controller epoch and are refused when a
	// higher epoch has touched the key — combined with W+R > N this
	// yields a single serial order per key.
	Linearizable
)

// String implements fmt.Stringer.
func (c Consistency) String() string {
	switch c {
	case Eventual:
		return "eventual"
	case Session:
		return "session"
	case Linearizable:
		return "linearizable"
	default:
		return "unknown"
	}
}

// Placement selects how a backend ranks online members for new copies.
type Placement int

const (
	// PlaceDwell ranks by dwell tier (longest-staying first), then by
	// current load (fewest copies first), then by address — the
	// Abdisarabshali-style reliability-weighted placement.
	PlaceDwell Placement = iota
	// PlaceLowestAddr is the legacy ReplicaManager order: lowest
	// addresses first, regardless of dwell or load.
	PlaceLowestAddr
)

// View is the backend's window onto the churning cluster: who the
// members are, who is reachable right now, how long each is predicted
// to stay, and the current controller epoch. The controller supplies
// one (vcloud.Controller.StorageView); tests use FuncView.
type View interface {
	// Members returns the current member addresses in ascending order.
	Members() []vnet.Addr
	// Online reports whether the member is reachable right now.
	Online(a vnet.Addr) bool
	// Dwell returns the predicted residual dwell of the member in
	// seconds (+Inf for parked/stationary members, 0 for unknown).
	Dwell(a vnet.Addr) float64
	// Epoch returns the current controller epoch counter (0 unfenced).
	Epoch() uint64
}

// FuncView adapts plain functions to a View.
type FuncView struct {
	MembersFn func() []vnet.Addr
	OnlineFn  func(vnet.Addr) bool
	DwellFn   func(vnet.Addr) float64
	EpochFn   func() uint64
}

// Members implements View.
func (v FuncView) Members() []vnet.Addr { return v.MembersFn() }

// Online implements View; nil means always online.
func (v FuncView) Online(a vnet.Addr) bool {
	if v.OnlineFn == nil {
		return true
	}
	return v.OnlineFn(a)
}

// Dwell implements View; nil means parked (+Inf).
func (v FuncView) Dwell(a vnet.Addr) float64 {
	if v.DwellFn == nil {
		return math.Inf(1)
	}
	return v.DwellFn(a)
}

// Epoch implements View; nil means unfenced (0).
func (v FuncView) Epoch() uint64 {
	if v.EpochFn == nil {
		return 0
	}
	return v.EpochFn()
}

// WriteReq is a fenced write: store Data (or a modeled Size bytes)
// under Key on behalf of Client, at the writer's controller Epoch.
type WriteReq struct {
	Client ClientID
	Key    Key
	// Data is the object payload; may be nil for modeled-size objects.
	Data []byte
	// Size overrides len(Data) as the modeled byte size when non-zero.
	Size int
	// Epoch is the writer's controller epoch counter (0 = unfenced).
	Epoch uint64
}

// ReadReq is a fenced read of Key on behalf of Client at Epoch.
type ReadReq struct {
	Client ClientID
	Key    Key
	// Epoch is the reader's controller epoch counter (0 = unfenced).
	Epoch uint64
}

// RepairReq asks the backend to re-replicate every under-replicated
// key from surviving copies, fenced at the repairer's Epoch.
type RepairReq struct {
	// Epoch is the repairer's controller epoch counter (0 = unfenced).
	Epoch uint64
}

// WriteAck reports a write's outcome. A write is Acked when the
// backend placed at least a write quorum of copies/fragments; an
// un-acked write may still have left partial copies behind.
type WriteAck struct {
	// Version is the version this write created (0 when refused).
	Version Version
	// Placed lists the member addresses holding a copy or fragment of
	// the new version, ascending.
	Placed []vnet.Addr
	// Acked reports whether the write reached its quorum.
	Acked bool
}

// ReadResult reports a successful read.
type ReadResult struct {
	// Data is the reconstructed payload (nil for modeled-size objects).
	Data []byte
	// Version is the version served.
	Version Version
	// Latency is the modeled time-to-first-usable-byte in seconds: the
	// quorum'th-smallest member RTT at the transfer size.
	Latency float64
	// Replies is how many online holders answered.
	Replies int
}

// Backend is the storage service contract both backends satisfy.
type Backend interface {
	// Write stores the object, returning the ack (zero-valued and
	// un-Acked when refused by fencing).
	Write(req WriteReq) WriteAck
	// Read fetches the object; ok is false when no read quorum is
	// reachable, the key is unknown, or fencing/session rules refuse.
	Read(req ReadReq) (res ReadResult, ok bool)
	// Repair re-replicates under-replicated keys from surviving
	// copies, returning how many new copies/fragments were created.
	Repair(req RepairReq) int
	// Forget drops every copy and fragment held by the member — the
	// member departed for good and its storage is gone. It returns how
	// many copies were dropped.
	Forget(a vnet.Addr) int
	// Holders returns the members holding a copy or fragment of the
	// key, ascending (regardless of liveness).
	Holders(k Key) []vnet.Addr
	// Durable returns the highest version of the key that could still
	// be reconstructed from the surviving (non-forgotten) copies, and
	// whether any version survives at all. Liveness is ignored: a
	// crashed holder still holds.
	Durable(k Key) (Version, bool)
	// View returns the cluster view the backend operates on.
	View() View
	// Stats returns the backend's counters.
	Stats() *Stats
}

// Stats aggregates storage-service outcomes.
type Stats struct {
	Writes    metrics.Counter // write attempts
	WriteAcks metrics.Counter // writes that reached their quorum
	Reads     metrics.Counter // read attempts
	ReadsOK   metrics.Counter // reads served
	// StaleWrites counts writes and repairs refused by epoch fencing.
	StaleWrites metrics.Counter
	// StaleReads counts reads refused by per-key epoch fencing.
	StaleReads metrics.Counter
	// SessionStale counts reads refused because serving them would move
	// a session client backwards.
	SessionStale metrics.Counter
	// QuorumStale counts reads refused because the reachable replies
	// could not prove the last acknowledged version — strict quorums
	// refuse rather than serve below an acked write (Sloppy forfeits
	// this and serves whatever is reachable).
	QuorumStale metrics.Counter
	// ReReplicas counts copies/fragments created by repair.
	ReReplicas metrics.Counter
	// BytesMoved counts modeled bytes shipped for placement and repair.
	BytesMoved metrics.Counter
}

// Availability returns served/attempted reads.
func (s *Stats) Availability() float64 {
	return metrics.Ratio(s.ReadsOK.Value(), s.Reads.Value())
}

// RTTFunc models the round-trip time in seconds to fetch size bytes
// from member a. Backends use it to derive read latency: the quorum'th
// smallest RTT among responding holders.
type RTTFunc func(a vnet.Addr, size int) float64

// DefaultRTT is a DSRC-like transfer model: 8 ms of access latency
// plus the serialization time of size bytes at 3 MB/s.
func DefaultRTT(_ vnet.Addr, size int) float64 {
	return 0.008 + float64(size)/(3<<20)
}

// Config tunes a backend. The zero value is completed by Validate:
// N=3, W and R majority (2), K=4, M=2, FragAck=K+M, Eventual
// consistency, dwell placement, DefaultRTT.
type Config struct {
	// N is the whole-object copy count (Replicated backend).
	N int
	// W is the write quorum: a write is acked once W copies are placed.
	W int
	// R is the read quorum: a read needs R online holders to answer.
	// W+R > N is required (quorum intersection).
	R int

	// K and M are the erasure-code data and parity fragment counts
	// (ErasureCoded backend): K+M fragments are spread, any K distinct
	// ones reconstruct. K >= 1, M >= 0, K+M <= 255.
	K, M int
	// FragAck is the erasure-code write quorum in members: a write is
	// acked once its fragments rest on at least FragAck distinct
	// members. Default K+M (fully spread, one fragment per member when
	// the fleet allows); must be > M so an acked, fully-spread write
	// survives M member losses.
	FragAck int

	// Consistency selects eventual / session / linearizable.
	Consistency Consistency
	// Sloppy forfeits quorum intersection for availability: W+R > N is
	// not required, reads accept any R reachable copies (not R members
	// of the last write's placement), and a read may serve below the
	// last acknowledged version. This is the legacy ReplicaManager
	// read-one model; leave it false for the quorum guarantees.
	Sloppy bool
	// Placement selects dwell-weighted or lowest-address ranking.
	Placement Placement
	// RetainOffline keeps copies held by offline members (sleep model);
	// when false an offline holder's copies are dropped at repair
	// (departure model, the legacy ReplicaManager default).
	RetainOffline bool
	// TrimSurplus lets repair trim over-replicated keys back to N when
	// sleepers return (only meaningful with RetainOffline). Repair
	// never trims a copy whose version exceeds the best live version.
	TrimSurplus bool
	// RTT models member fetch latency; nil means DefaultRTT.
	RTT RTTFunc
}

// Validate fills defaults and rejects inconsistent quorums.
func (c *Config) Validate() error {
	if c.N == 0 {
		c.N = 3
	}
	if c.W == 0 {
		c.W = c.N/2 + 1
	}
	if c.R == 0 {
		c.R = c.N - c.W + 1
	}
	if c.K == 0 {
		c.K = 4
		if c.M == 0 {
			c.M = 2
		}
	}
	if c.FragAck == 0 {
		c.FragAck = c.K + c.M
	}
	if c.RTT == nil {
		c.RTT = DefaultRTT
	}
	if c.N < 1 || c.W < 1 || c.R < 1 {
		return fmt.Errorf("store: quorums must be >= 1 (N=%d W=%d R=%d)", c.N, c.W, c.R)
	}
	if c.W > c.N || c.R > c.N {
		return fmt.Errorf("store: W and R cannot exceed N (N=%d W=%d R=%d)", c.N, c.W, c.R)
	}
	if !c.Sloppy && c.W+c.R <= c.N {
		return fmt.Errorf("store: W+R must exceed N for quorum intersection (N=%d W=%d R=%d)", c.N, c.W, c.R)
	}
	if c.K < 1 || c.M < 0 || c.K+c.M > 255 {
		return fmt.Errorf("store: erasure code needs 1 <= K, 0 <= M, K+M <= 255 (K=%d M=%d)", c.K, c.M)
	}
	if c.FragAck <= c.M || c.FragAck > c.K+c.M {
		return fmt.Errorf("store: FragAck must be in (M, K+M] so acked writes survive (K=%d M=%d FragAck=%d)", c.K, c.M, c.FragAck)
	}
	if c.Consistency < Eventual || c.Consistency > Linearizable {
		return fmt.Errorf("store: unknown consistency level %d", c.Consistency)
	}
	return nil
}

// sessions tracks each client's per-key version watermark — the
// client's version vector over the keys it has touched. Monotonic
// reads compare against it; acked writes and served reads advance it.
type sessions map[ClientID]map[Key]Version

func (s sessions) watermark(c ClientID, k Key) Version {
	if c == "" {
		return 0
	}
	return s[c][k]
}

func (s sessions) advance(c ClientID, k Key, v Version) {
	if c == "" {
		return
	}
	m := s[c]
	if m == nil {
		m = make(map[Key]Version)
		s[c] = m
	}
	if v > m[k] {
		m[k] = v
	}
}

// rankEntry pairs a candidate with its placement sort keys.
type rankEntry struct {
	addr vnet.Addr
	tier int
	load int
}

// rankOnline returns the view's online members not in exclude, ordered
// by the placement policy: PlaceDwell sorts by dwell tier descending,
// then load ascending, then address; PlaceLowestAddr by address alone.
// The returned slice is valid until the next call (shared scratch).
func rankOnline(scratch *[]rankEntry, v View, p Placement, load map[vnet.Addr]int, exclude func(vnet.Addr) bool) []rankEntry {
	es := (*scratch)[:0]
	for _, a := range v.Members() {
		if !v.Online(a) || (exclude != nil && exclude(a)) {
			continue
		}
		e := rankEntry{addr: a}
		if p == PlaceDwell {
			e.tier = mobility.DwellTier(v.Dwell(a))
			e.load = load[a]
		}
		es = append(es, e)
	}
	slices.SortFunc(es, func(x, y rankEntry) int {
		if x.tier != y.tier {
			return y.tier - x.tier // longest dwell first
		}
		if x.load != y.load {
			return x.load - y.load // least loaded first
		}
		switch {
		case x.addr < y.addr:
			return -1
		case x.addr > y.addr:
			return 1
		}
		return 0
	})
	*scratch = es
	return es
}

// quantile returns the q'th smallest value (1-based) of rtts, sorting
// in place. It assumes 1 <= q <= len(rtts).
func quantile(rtts []float64, q int) float64 {
	slices.Sort(rtts)
	return rtts[q-1]
}

// Put writes data under key through b, stamped with b's current view
// epoch — the everyday client call.
func Put(b Backend, client ClientID, key Key, data []byte) WriteAck {
	return b.Write(WriteReq{Client: client, Key: key, Data: data, Epoch: b.View().Epoch()})
}

// PutSized writes a modeled-size object (no payload bytes) under key.
func PutSized(b Backend, client ClientID, key Key, size int) WriteAck {
	return b.Write(WriteReq{Client: client, Key: key, Size: size, Epoch: b.View().Epoch()})
}

// Get reads key through b at b's current view epoch.
func Get(b Backend, client ClientID, key Key) (ReadResult, bool) {
	return b.Read(ReadReq{Client: client, Key: key, Epoch: b.View().Epoch()})
}

// Fix runs one repair pass at b's current view epoch.
func Fix(b Backend) int {
	return b.Repair(RepairReq{Epoch: b.View().Epoch()})
}
