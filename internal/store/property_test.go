package store_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"vcloud/internal/faults"
	"vcloud/internal/geo"
	"vcloud/internal/roadnet"
	"vcloud/internal/scenario"
	"vcloud/internal/store"
	"vcloud/internal/vnet"
)

// TestQuorumIntersectionProperty: for EVERY configuration N <= 9 with
// W + R > N, a read that succeeds returns at least the newest acked
// version — under any schedule of crashes, recoveries, geometric
// partitions, heals, writes, reads and repair passes drawn from the
// fault injector. Overlapping quorums are the whole mechanism: the
// write quorum and the read quorum must share a member, so staleness
// can only ever surface as refusal (no quorum), never as a stale
// success. Configurations with W + R <= N are exactly the ones where
// this fails, which is why Config.Validate rejects them.
func TestQuorumIntersectionProperty(t *testing.T) {
	for n := 1; n <= 9; n++ {
		net, err := roadnet.ParkingLot(roadnet.ParkingLotSpec{Aisles: 3, AisleLenM: 120, AisleGapM: 30})
		if err != nil {
			t.Fatal(err)
		}
		s, err := scenario.New(scenario.Spec{Seed: int64(n), Network: net, NumVehicles: n, Parked: true})
		if err != nil {
			t.Fatal(err)
		}
		rsu, err := s.AddRSU(geo.Point{X: 0, Y: 0})
		if err != nil {
			t.Fatal(err)
		}
		inj, err := faults.NewInjector(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		fleet := make([]vnet.Addr, 0, n)
		for _, id := range s.VehicleIDs() {
			fleet = append(fleet, vnet.Addr(id))
		}
		for w := 1; w <= n; w++ {
			for r := 1; r <= n; r++ {
				if w+r <= n {
					continue
				}
				t.Run(fmt.Sprintf("n%d_w%d_r%d", n, w, r), func(t *testing.T) {
					runQuorumSchedules(t, s, inj, rsu.Addr(), fleet, n, w, r)
				})
			}
		}
		inj.Close()
	}
}

// runQuorumSchedules drives testing/quick over randomized fault/IO
// schedules for one (N, W, R) configuration.
func runQuorumSchedules(t *testing.T, s *scenario.Scenario, inj *faults.Injector, rsu vnet.Addr, fleet []vnet.Addr, n, w, r int) {
	bounds := s.Network.Bounds()
	view := store.FuncView{
		MembersFn: func() []vnet.Addr { return fleet },
		OnlineFn:  func(a vnet.Addr) bool { return !inj.Cut(rsu, a) },
	}
	f := func(raw []uint16) bool {
		// Each schedule starts from a clean radio: no faults carry over.
		defer func() {
			for _, a := range fleet {
				if inj.Crashed(a) {
					inj.RecoverNode(a)
				}
			}
		}()
		b, err := store.NewReplicated(store.Config{
			N: n, W: w, R: r,
			// Crashes are outages, not departures: holders keep their
			// disks, so recovery restores stale copies the read quorum
			// must then outvote — the adversarial case for intersection.
			RetainOffline: true,
		}, view, &store.Stats{})
		if err != nil {
			t.Fatalf("config n=%d w=%d r=%d rejected: %v", n, w, r, err)
		}
		acked := map[store.Key]store.Version{}
		var heals []func()
		defer func() {
			for _, h := range heals {
				h()
			}
		}()
		for _, op := range raw {
			member := fleet[int(op/8)%len(fleet)]
			key := store.Key(fmt.Sprintf("k%d", (op/64)%4))
			switch op % 8 {
			case 0, 1: // write
				if ack := store.PutSized(b, "", key, 4<<10); ack.Acked {
					acked[key] = ack.Version
				}
			case 2, 3: // read — the property check
				want := acked[key]
				if res, ok := store.Get(b, "", key); ok && res.Version < want {
					t.Logf("n=%d w=%d r=%d: read %s served v%d after ack v%d", n, w, r, key, res.Version, want)
					return false
				}
			case 4: // crash / recover toggles one member
				if inj.Crashed(member) {
					inj.RecoverNode(member)
				} else {
					inj.CrashNode(member)
				}
			case 5: // geometric partition around a pseudo-random point
				c := geo.Point{
					X: bounds.Min.X + bounds.Width()*float64(op%97)/97,
					Y: bounds.Min.Y + bounds.Height()*float64(op%89)/89,
				}
				heals = append(heals, inj.StartPartition(c, 40+float64(op%50)))
			case 6: // heal the oldest open partition
				if len(heals) > 0 {
					heals[0]()
					heals = heals[1:]
				}
			case 7: // repair pass
				store.Fix(b)
			}
		}
		return true
	}
	rng := rand.New(rand.NewSource(int64(n*100 + w*10 + r)))
	if err := quick.Check(f, &quick.Config{MaxCount: 4, Rand: rng}); err != nil {
		t.Error(err)
	}
}
