package store_test

import (
	"bytes"
	"testing"

	"vcloud/internal/store"
)

// FuzzErasureRoundTrip: for any payload and any (k, m) inside GF(2^8)'s
// reach, encoding then erasing any mask of at most m shards must decode
// back to the exact original bytes — the MDS "any K of K+M" guarantee
// the storage service's durability threshold is built on.
func FuzzErasureRoundTrip(f *testing.F) {
	f.Add([]byte("vehicular cloud storage"), uint8(4), uint8(2), uint16(0b110000))
	f.Add([]byte{}, uint8(1), uint8(0), uint16(0))
	f.Add([]byte{0xff}, uint8(8), uint8(4), uint16(0b1111))
	f.Add(bytes.Repeat([]byte{0xab, 0x00, 0x11}, 100), uint8(3), uint8(3), uint16(0b111))
	f.Fuzz(func(t *testing.T, data []byte, k8, m8 uint8, mask uint16) {
		k := int(k8)%16 + 1
		m := int(m8) % 9
		shards, err := store.Encode(k, m, data)
		if err != nil {
			t.Fatalf("Encode(%d,%d) failed: %v", k, m, err)
		}
		if len(shards) != k+m {
			t.Fatalf("Encode returned %d shards, want %d", len(shards), k+m)
		}
		// Erase shards per the mask, most-significant-bit order, but never
		// more than m: within the erasure budget the decode MUST succeed.
		erased := 0
		for i := 0; i < k+m && erased < m; i++ {
			if mask&(1<<i) != 0 {
				shards[i] = nil
				erased++
			}
		}
		if err := store.Decode(k, m, shards); err != nil {
			t.Fatalf("Decode(%d,%d) with %d erased failed: %v", k, m, erased, err)
		}
		got, err := store.Join(k, shards, len(data))
		if err != nil {
			t.Fatalf("Join failed: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(data))
		}
		// Determinism: re-encoding the recovered payload must reproduce
		// every shard bit-for-bit, parity included.
		again, err := store.Encode(k, m, got)
		if err != nil {
			t.Fatalf("re-Encode failed: %v", err)
		}
		for i := range shards {
			if !bytes.Equal(shards[i], again[i]) {
				t.Fatalf("shard %d not reproduced after decode", i)
			}
		}
	})
}
