// Reed–Solomon-style systematic erasure code over GF(2^8), stdlib
// only. An object is split into K data shards; M parity shards are
// derived through a Cauchy matrix, so ANY K of the K+M shards
// reconstruct the original bytes exactly. Everything is deterministic:
// the same (K, M, data) always yields the same shards.
//
// The field is GF(2^8) with the AES-adjacent primitive polynomial
// x^8+x^4+x^3+x^2+1 (0x11d) and generator 2; multiplication goes
// through exp/log tables built once at init. The encode matrix is the
// identity stacked on the Cauchy block C[i][j] = 1/(x_i ⊕ y_j) with
// x_i = K+i and y_j = j — all x distinct from all y, so every square
// submatrix of the Cauchy block is invertible, which is exactly the
// MDS property the "any K shards" guarantee needs. Decoding picks the
// first K surviving rows, inverts that K×K submatrix with Gaussian
// elimination, and multiplies back.
package store

import "fmt"

// gfExp and gfLog are the GF(2^8) exponent/log tables for generator 2
// modulo 0x11d. gfExp is doubled so gfMul can skip the mod-255 fold.
var (
	gfExp [510]byte
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfExp[i+255] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11d
		}
	}
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfInv inverts a nonzero field element.
func gfInv(a byte) byte { return gfExp[255-int(gfLog[a])] }

// encodeRow returns row r (0 <= r < k+m) of the systematic encode
// matrix into dst: identity for the first k rows, Cauchy below.
func encodeRow(dst []byte, k, r int) []byte {
	dst = dst[:0]
	for j := 0; j < k; j++ {
		switch {
		case r < k:
			if r == j {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		default:
			// Cauchy: 1 / (x ⊕ y), x = k + (r-k) = r, y = j.
			dst = append(dst, gfInv(byte(r)^byte(j)))
		}
	}
	return dst
}

// validateKM rejects erasure parameters outside GF(2^8)'s reach.
func validateKM(k, m int) error {
	if k < 1 || m < 0 || k+m > 255 {
		return fmt.Errorf("store: erasure code needs 1 <= k, 0 <= m, k+m <= 255 (k=%d m=%d)", k, m)
	}
	return nil
}

// Encode splits data into k data shards plus m parity shards, each
// ceil(len(data)/k) bytes (data is zero-padded). Reassemble with Join;
// reconstruct missing shards with Decode.
func Encode(k, m int, data []byte) ([][]byte, error) {
	if err := validateKM(k, m); err != nil {
		return nil, err
	}
	shardLen := (len(data) + k - 1) / k
	shards := make([][]byte, k+m)
	for i := 0; i < k; i++ {
		s := make([]byte, shardLen)
		copy(s, data[min(i*shardLen, len(data)):])
		shards[i] = s
	}
	row := make([]byte, 0, k)
	for i := 0; i < m; i++ {
		row = encodeRow(row, k, k+i)
		p := make([]byte, shardLen)
		for j := 0; j < k; j++ {
			c := row[j]
			if c == 0 {
				continue
			}
			src := shards[j]
			for b := range p {
				p[b] ^= gfMul(c, src[b])
			}
		}
		shards[k+i] = p
	}
	return shards, nil
}

// Decode reconstructs every nil shard in place. shards must have
// length k+m; at least k entries must be non-nil and equally sized.
func Decode(k, m int, shards [][]byte) error {
	if err := validateKM(k, m); err != nil {
		return err
	}
	if len(shards) != k+m {
		return fmt.Errorf("store: Decode needs %d shard slots, got %d", k+m, len(shards))
	}
	present := make([]int, 0, k)
	shardLen := -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		if shardLen == -1 {
			shardLen = len(s)
		} else if len(s) != shardLen {
			return fmt.Errorf("store: shard %d has length %d, want %d", i, len(s), shardLen)
		}
		if len(present) < k {
			present = append(present, i)
		}
	}
	if len(present) < k {
		return fmt.Errorf("store: only %d of %d shards survive, need %d", len(present), k+m, k)
	}
	// Fast path: all data shards present — only parity can be missing.
	dataIntact := true
	for i := 0; i < k; i++ {
		if shards[i] == nil {
			dataIntact = false
			break
		}
	}
	if !dataIntact {
		// Invert the submatrix of encode rows for the surviving shards,
		// then data = inv × survivors.
		sub := make([][]byte, k)
		for t, r := range present {
			sub[t] = encodeRow(make([]byte, 0, k), k, r)
		}
		inv, err := invertMatrix(sub)
		if err != nil {
			return err
		}
		rebuilt := make([][]byte, k)
		for i := 0; i < k; i++ {
			if shards[i] != nil {
				rebuilt[i] = shards[i]
				continue
			}
			out := make([]byte, shardLen)
			for t, r := range present {
				c := inv[i][t]
				if c == 0 {
					continue
				}
				src := shards[r]
				for b := range out {
					out[b] ^= gfMul(c, src[b])
				}
			}
			rebuilt[i] = out
		}
		copy(shards, rebuilt)
	}
	// Re-derive any missing parity from the (now complete) data shards.
	row := make([]byte, 0, k)
	for i := 0; i < m; i++ {
		if shards[k+i] != nil {
			continue
		}
		row = encodeRow(row, k, k+i)
		p := make([]byte, shardLen)
		for j := 0; j < k; j++ {
			c := row[j]
			if c == 0 {
				continue
			}
			src := shards[j]
			for b := range p {
				p[b] ^= gfMul(c, src[b])
			}
		}
		shards[k+i] = p
	}
	return nil
}

// invertMatrix returns the inverse of the square matrix a over GF(2^8)
// by Gauss–Jordan elimination. a is consumed as scratch.
func invertMatrix(a [][]byte) ([][]byte, error) {
	n := len(a)
	inv := make([][]byte, n)
	for i := range inv {
		inv[i] = make([]byte, n)
		inv[i][i] = 1
	}
	for col := 0; col < n; col++ {
		// Find a pivot at or below the diagonal.
		pivot := -1
		for r := col; r < n; r++ {
			if a[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, fmt.Errorf("store: singular decode matrix (column %d)", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		// Scale the pivot row to 1.
		if p := a[col][col]; p != 1 {
			pi := gfInv(p)
			for j := 0; j < n; j++ {
				a[col][j] = gfMul(a[col][j], pi)
				inv[col][j] = gfMul(inv[col][j], pi)
			}
		}
		// Eliminate the column everywhere else.
		for r := 0; r < n; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			c := a[r][col]
			for j := 0; j < n; j++ {
				a[r][j] ^= gfMul(c, a[col][j])
				inv[r][j] ^= gfMul(c, inv[col][j])
			}
		}
	}
	return inv, nil
}

// Join reassembles the original length-byte object from the first k
// (data) shards.
func Join(k int, shards [][]byte, length int) ([]byte, error) {
	if k < 1 || len(shards) < k {
		return nil, fmt.Errorf("store: Join needs the %d data shards, got %d slots", k, len(shards))
	}
	out := make([]byte, 0, length)
	for i := 0; i < k && len(out) < length; i++ {
		if shards[i] == nil {
			return nil, fmt.Errorf("store: data shard %d missing (Decode first)", i)
		}
		out = append(out, shards[i]...)
	}
	if len(out) < length {
		return nil, fmt.Errorf("store: shards hold %d bytes, want %d", len(out), length)
	}
	return out[:length], nil
}
