package chaos

import (
	"fmt"
	"hash/fnv"

	"vcloud/internal/geo"
	"vcloud/internal/shardworld"
	"vcloud/internal/sim"
)

// Shard-soak draw tags: one per independent storm parameter, so every
// episode's shape is a pure function of (seed, episode, tag).
const (
	drawFleet   = 0x11
	drawTicks   = 0x23
	drawChurn   = 0x37
	drawOutageX = 0x41
	drawOutageY = 0x43
	drawOutageW = 0x47
	drawOutageT = 0x53
)

// ShardSoakConfig tunes the sharded-kernel storm soak: a sequence of
// randomized-but-seeded storm episodes — fleet churn plus a roaming
// regional beacon outage — each run on the geo-sharded kernel AND on
// the serial kernel, with bit-for-bit output equality as the armed
// invariant. Zero values take defaults.
type ShardSoakConfig struct {
	// Seed drives every storm draw; equal seeds replay equal soaks.
	Seed int64
	// Shards is the sharded arm's shard count. Default 4.
	Shards int
	// Episodes is how many storm episodes to run. Default 4.
	Episodes int
	// Vehicles is the base fleet size; episodes vary it upward by up to
	// 50%. Default 96.
	Vehicles int
	// Ticks is the base episode length; episodes vary it upward by up to
	// 50%. Default 48.
	Ticks int
}

// ShardSoakReport is the storm soak's outcome. Violations being empty is
// the pass criterion.
type ShardSoakReport struct {
	Episodes int
	Shards   int
	// Events counts kernel events processed by the sharded arms;
	// CrossEvents and Handoffs count shard-border traffic, so a soak
	// that never exercised the borders is visible as zero here.
	Events      uint64
	CrossEvents uint64
	Handoffs    int64
	Delivered   uint64
	// Checksum digests every episode's (already shard-invariant) model
	// checksum in order; same seed reproduces it bit-for-bit.
	Checksum uint64
	// Violations holds every episode whose sharded output diverged from
	// serial, or whose run tripped an internal conservation invariant.
	Violations []string
}

func (c *ShardSoakConfig) defaults() {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Episodes == 0 {
		c.Episodes = 4
	}
	if c.Vehicles == 0 {
		c.Vehicles = 96
	}
	if c.Ticks == 0 {
		c.Ticks = 48
	}
}

// RunShardSoak runs the sharded-kernel storm soak: each episode draws a
// storm shape (fleet size, churn fraction, outage region and window)
// from named hash streams, runs the shardworld scenario at cfg.Shards
// shards and again at one shard, and records a violation unless the two
// model outputs are byte-for-byte identical. shardworld.Run's built-in
// conservation invariants (fleet vs churn schedule, applied == delivered)
// arm on every run; an invariant error is recorded, not fatal, so one
// bad episode cannot mask later ones.
func RunShardSoak(cfg ShardSoakConfig) (*ShardSoakReport, error) {
	cfg.defaults()
	if cfg.Shards < 2 {
		return nil, fmt.Errorf("chaos: shard soak needs at least 2 shards, got %d", cfg.Shards)
	}
	if cfg.Episodes < 1 || cfg.Vehicles < 8 || cfg.Ticks < 8 {
		return nil, fmt.Errorf("chaos: shard soak config too small: episodes=%d vehicles=%d ticks=%d",
			cfg.Episodes, cfg.Vehicles, cfg.Ticks)
	}

	useed := uint64(sim.SubSeed(cfg.Seed, "chaos/shardsoak"))
	rep := &ShardSoakReport{Episodes: cfg.Episodes, Shards: cfg.Shards}
	sum := fnv.New64a()
	for ep := 0; ep < cfg.Episodes; ep++ {
		e := uint64(ep)
		wcfg := shardworld.DefaultConfig(sim.SubSeed(cfg.Seed, fmt.Sprintf("chaos/shardsoak/%d", ep)), cfg.Shards)
		wcfg.Vehicles = cfg.Vehicles + int(sim.HashUnit(useed, drawFleet, e)*float64(cfg.Vehicles)/2)
		wcfg.Ticks = cfg.Ticks + int(sim.HashUnit(useed, drawTicks, e)*float64(cfg.Ticks)/2)
		wcfg.SampleEvery = wcfg.Ticks / 4
		wcfg.ChurnFrac = 0.1 + 0.3*sim.HashUnit(useed, drawChurn, e)

		// A roaming outage: a square covering ~1/3 of the world span,
		// placed anywhere, silencing beacons for the middle of the run.
		w := wcfg.WorldSize
		side := w / 3
		ox := sim.HashUnit(useed, drawOutageX, e) * (w - side)
		oy := sim.HashUnit(useed, drawOutageY, e) * (w - side)
		from := 1 + int(sim.HashUnit(useed, drawOutageT, e)*float64(wcfg.Ticks)/3)
		span := wcfg.Ticks/4 + int(sim.HashUnit(useed, drawOutageW, e)*float64(wcfg.Ticks)/4)
		wcfg.Outage = &shardworld.Outage{
			Rect:     geo.NewRect(geo.Point{X: ox, Y: oy}, geo.Point{X: ox + side, Y: oy + side}),
			FromTick: from,
			ToTick:   from + span,
		}

		sharded, err := shardworld.Run(wcfg)
		if err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("episode %d: sharded run: %v", ep, err))
			continue
		}
		serialCfg := wcfg
		serialCfg.Shards = 1
		serial, err := shardworld.Run(serialCfg)
		if err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("episode %d: serial run: %v", ep, err))
			continue
		}
		if sharded.Comparable() != serial.Comparable() {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"episode %d: sharded output diverged from serial (checksum %016x != %016x)",
				ep, sharded.Checksum, serial.Checksum))
		}
		rep.Events += sharded.Processed
		rep.CrossEvents += sharded.CrossEvents
		rep.Handoffs += sharded.Handoffs
		rep.Delivered += sharded.Radio.Delivered
		fmt.Fprintf(sum, "%d:%016x\n", ep, sharded.Checksum)
	}
	rep.Checksum = sum.Sum64()
	return rep, nil
}
