package chaos

import (
	"testing"
	"time"
)

// satCfg is the CI-sized saturation soak: the congestion workload ramps
// over 90 simulated seconds of storm.
func satCfg(seed int64) SoakConfig {
	return SoakConfig{
		Seed:     seed,
		Vehicles: 16,
		Duration: 90 * time.Second,
		Saturate: true,
	}
}

func TestSaturationSoakShort(t *testing.T) {
	rep, err := Soak(satCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violation: %s", v)
	}
	if rep.SatSubmitted == 0 {
		t.Fatal("congestion workload idle: nothing submitted")
	}
	if rep.SatCompleted == 0 {
		t.Error("nothing completed under saturation: governor or tiers broken")
	}
	if rep.UplinkSent == 0 {
		t.Error("no traffic crossed the contended uplink")
	}
	t.Logf("sat: submitted=%d required=%d completed=%d failed=%d shed=%d admission=%d backpressured=%d",
		rep.SatSubmitted, rep.SatRequired, rep.SatCompleted, rep.SatFailed,
		rep.SatShed, rep.SatAdmission, rep.SatBackpressured)
	t.Logf("placement: vehicle=%d cloud=%d switches=%d bursts=%d outages=%d",
		rep.SatPlacedVehicle, rep.SatPlacedCloud, rep.TierSwitches, rep.SatLossBursts, rep.SatOutages)
	t.Logf("uplink: sent=%d delivered=%d lost=%d dropped=%d checksum=%x",
		rep.UplinkSent, rep.UplinkDelivered, rep.UplinkLost, rep.UplinkDropped, rep.Checksum)
}

// TestSaturationSoakSeeds is the acceptance sweep: three seeds of
// ramped load plus loss-burst/outage storms, zero violations of the
// saturation invariants (bounded queues, optional-only shedding,
// physical bandwidth estimates).
func TestSaturationSoakSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: TestSaturationSoakShort covers one seed")
	}
	var storms, overload int
	for seed := int64(1); seed <= 3; seed++ {
		rep, err := Soak(satCfg(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range rep.Violations {
			t.Errorf("seed %d: invariant violation: %s", seed, v)
		}
		if rep.SatSubmitted == 0 {
			t.Errorf("seed %d: congestion workload idle", seed)
		}
		storms += rep.SatLossBursts + rep.SatOutages
		overload += rep.SatShed + rep.SatBackpressured + rep.SatAdmission
		t.Logf("seed %d: submitted=%d completed=%d shed=%d admission=%d backpressured=%d vehicle=%d cloud=%d bursts=%d outages=%d",
			seed, rep.SatSubmitted, rep.SatCompleted, rep.SatShed, rep.SatAdmission,
			rep.SatBackpressured, rep.SatPlacedVehicle, rep.SatPlacedCloud,
			rep.SatLossBursts, rep.SatOutages)
	}
	if storms == 0 {
		t.Error("no seed fired a saturation storm: the loss-burst/outage branch never ran")
	}
	if overload == 0 {
		t.Error("no seed triggered overload control: the ramp never saturated anything")
	}
}

func TestSaturationSoakReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: single soak is enough")
	}
	a, err := Soak(satCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Soak(satCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum != b.Checksum {
		t.Fatalf("same seed, different checksums: %x vs %x", a.Checksum, b.Checksum)
	}
	if a.SatSubmitted != b.SatSubmitted || a.SatCompleted != b.SatCompleted ||
		a.SatShed != b.SatShed || a.SatAdmission != b.SatAdmission ||
		a.SatBackpressured != b.SatBackpressured ||
		a.SatPlacedVehicle != b.SatPlacedVehicle || a.SatPlacedCloud != b.SatPlacedCloud ||
		a.UplinkSent != b.UplinkSent || a.UplinkDropped != b.UplinkDropped {
		t.Errorf("same seed, different saturation counts:\n%+v\nvs\n%+v", a, b)
	}
	c, err := Soak(satCfg(6))
	if err != nil {
		t.Fatal(err)
	}
	if c.Checksum == a.Checksum {
		t.Error("different seeds produced identical event logs: saturation storm is not seeded")
	}
}
