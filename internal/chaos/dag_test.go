package chaos

import (
	"testing"
	"time"
)

// dagCfg is the CI-sized DAG soak: two simulated minutes so multi-stage
// jobs have room to finish between storm fronts.
func dagCfg(seed int64) SoakConfig {
	return SoakConfig{
		Seed:     seed,
		Vehicles: 16,
		Duration: 2 * time.Minute,
		DAG:      true,
	}
}

func TestDAGSoakShort(t *testing.T) {
	rep, err := Soak(dagCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violation: %s", v)
	}
	if rep.JobsSubmitted == 0 {
		t.Fatal("DAG workload idle: no job ever submitted")
	}
	if rep.JobsCompleted+int(rep.JobsResumed) == 0 {
		t.Error("no job completed or survived a failover: engine or storm broken")
	}
	if rep.JobsCompleted+rep.JobsFailed > rep.JobsSubmitted {
		t.Errorf("job accounting: completed %d + failed %d > submitted %d",
			rep.JobsCompleted, rep.JobsFailed, rep.JobsSubmitted)
	}
	t.Logf("jobs: submitted=%d completed=%d partial=%d failed=%d refused=%d resumed=%d", rep.JobsSubmitted,
		rep.JobsCompleted, rep.JobsPartial, rep.JobsFailed, rep.JobsRefused, rep.JobsResumed)
	t.Logf("stages: retries=%d relays=%d handoffs=%d member-kills=%d checksum=%x",
		rep.StageRetries, rep.StageRelays, rep.StageHandoffs, rep.MemberKills, rep.Checksum)
}

// TestDAGSoakSeeds is the acceptance sweep: five seeds of storm over
// the DAG workload, zero violations of the stage-level invariants (no
// double-applied outcome, ancestor completeness, replica budget,
// exactly-once callbacks).
func TestDAGSoakSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: TestDAGSoakShort covers one seed")
	}
	var kills, handoffs int
	for seed := int64(1); seed <= 5; seed++ {
		rep, err := Soak(dagCfg(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range rep.Violations {
			t.Errorf("seed %d: invariant violation: %s", seed, v)
		}
		if rep.JobsSubmitted == 0 {
			t.Errorf("seed %d: no job submitted", seed)
		}
		kills += rep.MemberKills
		handoffs += int(rep.StageHandoffs)
		t.Logf("seed %d: submitted=%d completed=%d failed=%d resumed=%d retries=%d relays=%d kills=%d",
			seed, rep.JobsSubmitted, rep.JobsCompleted, rep.JobsFailed, rep.JobsResumed,
			rep.StageRetries, rep.StageRelays, rep.MemberKills)
	}
	if kills == 0 {
		t.Error("no seed killed a member: the kill-member storm branch never fired")
	}
	if handoffs == 0 {
		t.Error("no stage output ever flowed member-to-member")
	}
}

func TestDAGSoakReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: single soak is enough")
	}
	a, err := Soak(dagCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Soak(dagCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum != b.Checksum {
		t.Fatalf("same seed, different checksums: %x vs %x", a.Checksum, b.Checksum)
	}
	if a.JobsSubmitted != b.JobsSubmitted || a.JobsCompleted != b.JobsCompleted ||
		a.JobsFailed != b.JobsFailed || a.JobsResumed != b.JobsResumed ||
		a.StageRetries != b.StageRetries || a.StageRelays != b.StageRelays ||
		a.MemberKills != b.MemberKills {
		t.Errorf("same seed, different DAG counts:\n%+v\nvs\n%+v", a, b)
	}
}
