package chaos

import (
	"testing"
	"time"
)

// shortCfg is the CI-sized soak: 60 simulated seconds of storm.
func shortCfg(seed int64) SoakConfig {
	return SoakConfig{
		Seed:     seed,
		Vehicles: 16,
		Duration: 60 * time.Second,
	}
}

func TestSoakShortHoldsInvariants(t *testing.T) {
	rep, err := Soak(shortCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violation: %s", v)
	}
	if rep.Submitted == 0 {
		t.Fatal("soak submitted nothing")
	}
	if rep.Completed == 0 {
		t.Error("soak completed nothing: storm too strong or scheduler broken")
	}
	if rep.FaultsInjected == 0 {
		t.Error("no faults injected: not a soak")
	}
	if rep.Checks == 0 {
		t.Error("invariant checker never ran")
	}
	if rep.Wrong > 0 {
		t.Errorf("%d wrong results slipped through voting (correct=%d unchecked=%d)",
			rep.Wrong, rep.Correct, rep.Unchecked)
	}
	t.Logf("submitted=%d completed=%d failed=%d refused=%d correct=%d unchecked=%d faults=%d failovers=%d checksum=%x",
		rep.Submitted, rep.Completed, rep.Failed, rep.Refused, rep.Correct, rep.Unchecked,
		rep.FaultsInjected, rep.Failovers, rep.Checksum)
}

func TestSoakReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: single soak is enough")
	}
	a, err := Soak(shortCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Soak(shortCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum != b.Checksum {
		t.Fatalf("same seed, different checksums: %x vs %x", a.Checksum, b.Checksum)
	}
	if a.Submitted != b.Submitted || a.Completed != b.Completed || a.Failed != b.Failed ||
		a.FaultsInjected != b.FaultsInjected {
		t.Errorf("same seed, different counts: %+v vs %+v", a, b)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event logs diverge in length: %d vs %d", len(a.Events), len(b.Events))
	}
	c, err := Soak(shortCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	if c.Checksum == a.Checksum {
		t.Error("different seeds produced identical event logs: storm is not seeded")
	}
}

// splitCfg is the CI-sized split-brain soak: fencing on, controller
// isolations in the storm mix.
func splitCfg(seed int64) SoakConfig {
	return SoakConfig{
		Seed:       seed,
		Vehicles:   16,
		Duration:   90 * time.Second,
		SplitBrain: true,
	}
}

func TestSplitBrainSoakShort(t *testing.T) {
	rep, err := Soak(splitCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violation: %s", v)
	}
	if rep.SplitBrains == 0 {
		t.Error("no split-brain isolations injected: not a split-brain soak")
	}
	if rep.Completed == 0 {
		t.Error("soak completed nothing: storm too strong or scheduler broken")
	}
	t.Logf("submitted=%d completed=%d failed=%d splits=%d epochs=%d abdications=%d merges=%d adopted=%d deduped=%d stale=%d checksum=%x",
		rep.Submitted, rep.Completed, rep.Failed, rep.SplitBrains, rep.Epochs,
		rep.Abdications, rep.Merges, rep.Adopted, rep.Deduped, rep.StaleRejected, rep.Checksum)
}

// TestSplitBrainSoakSeeds is the acceptance sweep: five seeds of
// split-brain storm, zero invariant violations, and at least one run
// that actually split (epoch advanced past the initial claim).
func TestSplitBrainSoakSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: TestSplitBrainSoakShort covers one seed")
	}
	var splits, epochBumps int
	for seed := int64(1); seed <= 5; seed++ {
		rep, err := Soak(splitCfg(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range rep.Violations {
			t.Errorf("seed %d: invariant violation: %s", seed, v)
		}
		splits += rep.SplitBrains
		if rep.Epochs > 1 {
			epochBumps++
		}
		t.Logf("seed %d: splits=%d epochs=%d abdications=%d merges=%d adopted=%d deduped=%d",
			seed, rep.SplitBrains, rep.Epochs, rep.Abdications, rep.Merges, rep.Adopted, rep.Deduped)
	}
	if splits == 0 {
		t.Error("no seed injected a split-brain isolation")
	}
	if epochBumps == 0 {
		t.Error("no seed ever advanced the epoch: isolations never caused a promotion")
	}
}

func TestSplitBrainSoakReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: single soak is enough")
	}
	a, err := Soak(splitCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Soak(splitCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum != b.Checksum {
		t.Fatalf("same seed, different checksums: %x vs %x", a.Checksum, b.Checksum)
	}
}

func TestSoakConfigValidate(t *testing.T) {
	bad := []SoakConfig{
		{Seed: 1, ByzFraction: 1.5},
		{Seed: 1, Vehicles: -1},
		{Seed: 1, Duration: -time.Second},
		{Seed: 1, TaskOps: -5},
	}
	for i, cfg := range bad {
		if _, err := Soak(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// storageCfg is the CI-sized churn-storm soak over the data service.
func storageCfg(seed int64, mode string) SoakConfig {
	return SoakConfig{
		Seed:     seed,
		Vehicles: 16,
		Duration: 90 * time.Second,
		Storage:  mode,
	}
}

func TestStorageSoakShort(t *testing.T) {
	for _, mode := range []string{"replicated", "ec"} {
		t.Run(mode, func(t *testing.T) {
			rep, err := Soak(storageCfg(1, mode))
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range rep.Violations {
				t.Errorf("invariant violation: %s", v)
			}
			if rep.StorageWrites == 0 || rep.StorageAcked == 0 {
				t.Errorf("storage workload idle: writes=%d acked=%d", rep.StorageWrites, rep.StorageAcked)
			}
			if rep.StorageReadsOK == 0 {
				t.Error("no storage read ever served")
			}
			if rep.Departures == 0 {
				t.Error("no permanent departures injected: not a churn storm")
			}
			t.Logf("writes=%d acked=%d reads=%d readsOK=%d lost=%d repaired=%d departures=%d checksum=%x",
				rep.StorageWrites, rep.StorageAcked, rep.StorageReads, rep.StorageReadsOK,
				rep.StorageLost, rep.StorageRepaired, rep.Departures, rep.Checksum)
		})
	}
}

// TestStorageSoakSeeds is the acceptance sweep: five seeds of churn
// storm per backend, zero storage-invariant violations.
func TestStorageSoakSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: TestStorageSoakShort covers one seed")
	}
	for _, mode := range []string{"replicated", "ec"} {
		var departures int
		for seed := int64(1); seed <= 5; seed++ {
			rep, err := Soak(storageCfg(seed, mode))
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range rep.Violations {
				t.Errorf("%s seed %d: invariant violation: %s", mode, seed, v)
			}
			departures += rep.Departures
			t.Logf("%s seed %d: acked=%d readsOK=%d lost=%d repaired=%d departures=%d",
				mode, seed, rep.StorageAcked, rep.StorageReadsOK, rep.StorageLost,
				rep.StorageRepaired, rep.Departures)
		}
		if departures == 0 {
			t.Errorf("%s: no seed injected a departure", mode)
		}
	}
}

func TestStorageSoakReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: single soak is enough")
	}
	a, err := Soak(storageCfg(4, "ec"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Soak(storageCfg(4, "ec"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum != b.Checksum {
		t.Fatalf("same seed, different checksums: %x vs %x", a.Checksum, b.Checksum)
	}
	if a.StorageAcked != b.StorageAcked || a.StorageLost != b.StorageLost || a.Departures != b.Departures {
		t.Errorf("same seed, different storage counts: %+v vs %+v", a, b)
	}
}
