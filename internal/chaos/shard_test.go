package chaos

import "testing"

// shardSoakCfg is the CI-sized sharded storm soak: three episodes of
// churn plus a roaming outage, each checked sharded-vs-serial. It runs
// under -race in CI — the shard workers are the repo's one sanctioned
// goroutine site, so this is the test that would catch a data race in
// the cross-shard protocol.
func shardSoakCfg(seed int64) ShardSoakConfig {
	return ShardSoakConfig{Seed: seed, Shards: 4, Episodes: 3, Vehicles: 96, Ticks: 48}
}

func TestShardSoakShort(t *testing.T) {
	rep, err := RunShardSoak(shardSoakCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violation: %s", v)
	}
	if rep.CrossEvents == 0 {
		t.Error("no cross-shard events: borders never exercised")
	}
	if rep.Handoffs == 0 {
		t.Error("no handoffs: vehicles never crossed a shard boundary")
	}
	if rep.Delivered == 0 {
		t.Error("no beacons delivered: storm silenced the whole soak")
	}
	t.Logf("shard soak: episodes=%d shards=%d events=%d cross=%d handoffs=%d delivered=%d checksum=%x",
		rep.Episodes, rep.Shards, rep.Events, rep.CrossEvents, rep.Handoffs, rep.Delivered, rep.Checksum)
}

// TestShardSoakSeeds is the acceptance sweep: three seeds, and the
// soak's checksum must reproduce bit-for-bit under an equal seed.
func TestShardSoakSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: TestShardSoakShort covers one seed")
	}
	for seed := int64(1); seed <= 3; seed++ {
		rep, err := RunShardSoak(shardSoakCfg(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range rep.Violations {
			t.Errorf("seed %d: invariant violation: %s", seed, v)
		}
		again, err := RunShardSoak(shardSoakCfg(seed))
		if err != nil {
			t.Fatal(err)
		}
		if again.Checksum != rep.Checksum {
			t.Errorf("seed %d: checksum not reproducible: %x then %x", seed, rep.Checksum, again.Checksum)
		}
	}
}

// TestShardSoakRejectsBadConfig checks the error paths.
func TestShardSoakRejectsBadConfig(t *testing.T) {
	if _, err := RunShardSoak(ShardSoakConfig{Shards: 1, Episodes: 1}); err == nil {
		t.Error("1-shard soak accepted; it would compare serial against itself")
	}
	if _, err := RunShardSoak(ShardSoakConfig{Shards: 2, Vehicles: 4}); err == nil {
		t.Error("tiny fleet accepted")
	}
}
