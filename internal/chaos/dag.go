// DAG soak: the dependent-stage job workload and its invariants
// (ISSUE 7). When SoakConfig.DAG is on, a stream of randomly-shaped DAG
// jobs (3–6 stages, random dependencies among earlier stages, an
// optional leaf branch, a small critical-path replica budget) flows
// alongside the task workload, the storm gains a kill-member branch (a
// member's process dies and its running stage work dies with it, unlike
// the radio-only crash branch), and the sweeps audit the DAG engine's
// safety contract:
//
//   - no stage outcome is applied twice: the engine's (task, epoch)
//     ledger plus the per-stage appliedTask tripwire surface duplicates
//     through Controller.InvariantViolations, which every sweep drains;
//
//   - a completed job implies ancestor completeness: every stage the
//     result reports Done has all of its dependencies Done, and every
//     stage that is not Done is Abandoned (an optional branch given up),
//     never Waiting, Running or Failed — a job may not claim success
//     over a hole in its dependency graph;
//
//   - the replica budget is never exceeded: the allocation tripwire in
//     buildJob fires through InvariantViolations, and the harness
//     re-checks ExtraReplicas against the submitted spec on every
//     result;
//
//   - job callbacks are exactly-once, and Partial is reported iff some
//     stage was abandoned.
//
// Jobs resumed by a failover successor lose their submitter callbacks
// (like task callbacks), so completed+failed can undercount submissions;
// the accounting invariant tolerates that, and JobsResumed reports how
// often it happened.
package chaos

import (
	"math/rand"
	"sort"

	"vcloud/internal/mobility"
	"vcloud/internal/sim"
	"vcloud/internal/vcloud"
)

// soakJob tracks one submitted DAG job by sequence number.
type soakJob struct {
	spec      vcloud.JobSpec
	submitted sim.Time
	fired     int
}

// dagState is the soak's DAG-workload bookkeeping.
type dagState struct {
	// rng is the dedicated "chaos.dag" stream shaping the random jobs,
	// so the DAG workload replays bit-for-bit per seed.
	rng  *rand.Rand
	jobs []*soakJob
	// kills counts member-process kills injected (bounded by the same
	// half-fleet budget as controller kills).
	kills int
}

// setupDAG arms the DAG workload state.
func (sk *soak) setupDAG() {
	sk.dg = &dagState{rng: sk.s.Kernel.NewStream("chaos.dag")}
}

// randomSpec draws one random-but-seeded job shape: 3–5 required stages
// whose dependencies point at random earlier stages, plus — half the
// time — one optional leaf branch, so graceful degradation is exercised
// alongside plain completion. The replica budget is small enough that
// allocation choices matter.
func (dg *dagState) randomSpec() vcloud.JobSpec {
	n := 3 + dg.rng.Intn(3)
	spec := vcloud.JobSpec{
		ReplicaBudget: 2,
		StageRetries:  2,
		TaskRetries:   1,
	}
	for i := 0; i < n; i++ {
		st := vcloud.StageSpec{
			Ops:         600 + dg.rng.Float64()*900,
			InputBytes:  800,
			OutputBytes: 400,
		}
		if i > 0 {
			// 1–2 distinct dependencies among earlier stages, sorted so the
			// spec is canonical.
			k := 1 + dg.rng.Intn(2)
			if k > i {
				k = i
			}
			perm := dg.rng.Perm(i)[:k]
			sort.Ints(perm)
			st.Deps = perm
		}
		spec.Stages = append(spec.Stages, st)
	}
	if dg.rng.Float64() < 0.5 {
		spec.Stages = append(spec.Stages, vcloud.StageSpec{
			Ops:         400 + dg.rng.Float64()*400,
			OutputBytes: 200,
			Deps:        []int{dg.rng.Intn(n)},
			Optional:    true,
		})
	}
	return spec
}

// dagTick submits one random DAG job and registers its outcome audit.
func (sk *soak) dagTick() {
	dg := sk.dg
	seq := len(dg.jobs)
	sj := &soakJob{spec: dg.randomSpec(), submitted: sk.s.Kernel.Now()}
	dg.jobs = append(dg.jobs, sj)
	err := sk.d.SubmitJobAnywhere(sj.spec, func(r vcloud.JobResult) {
		sk.onJobOutcome(seq, r)
	})
	if err != nil {
		sk.report.JobsRefused++
		sk.event("job %d refused at %s", seq, sk.s.Kernel.Now())
		return
	}
	sk.report.JobsSubmitted++
	sk.event("job %d submitted stages=%d budget=%d", seq, len(sj.spec.Stages), sj.spec.ReplicaBudget)
}

// onJobOutcome records a job callback and checks the job-level
// invariants: single firing, replica budget, and — on success —
// ancestor completeness and Partial consistency.
func (sk *soak) onJobOutcome(seq int, r vcloud.JobResult) {
	sj := sk.dg.jobs[seq]
	sj.fired++
	if sj.fired > 1 {
		sk.violate("job seq %d reported %d outcomes (a job callback fires at most once)", seq, sj.fired)
		return
	}
	if r.ExtraReplicas > sj.spec.ReplicaBudget {
		sk.violate("job seq %d allocated %d extra replicas over budget %d: the replica budget is never exceeded",
			seq, r.ExtraReplicas, sj.spec.ReplicaBudget)
	}
	if !r.OK {
		sk.report.JobsFailed++
		sk.event("job %d failed reason=%q restarts=%d", seq, r.Reason, r.Restarts)
		return
	}
	sk.report.JobsCompleted++
	if r.Partial {
		sk.report.JobsPartial++
	}
	abandoned := false
	for i, st := range r.Stages {
		switch st.Status {
		case vcloud.StageDone:
			for _, d := range sj.spec.Stages[i].Deps {
				if r.Stages[d].Status != vcloud.StageDone {
					sk.violate("job seq %d stage %d done but dependency %d is %s: a completed stage implies all its ancestors completed",
						seq, i, d, r.Stages[d].Status)
				}
			}
		case vcloud.StageAbandoned:
			abandoned = true
			if !sj.spec.Stages[i].Optional {
				// Validate's optional-closure rule means an abandoned stage is
				// optional itself or downstream of one.
				opt := false
				for _, d := range sj.spec.Stages[i].Deps {
					if r.Stages[d].Status == vcloud.StageAbandoned {
						opt = true
					}
				}
				if !opt {
					sk.violate("job seq %d abandoned required stage %d with no abandoned dependency", seq, i)
				}
			}
		default:
			sk.violate("job seq %d completed with stage %d in state %s: every stage of a completed job is done or abandoned",
				seq, i, st.Status)
		}
	}
	if r.Partial != abandoned {
		sk.violate("job seq %d partial=%v but abandoned-stage presence is %v: partial iff a branch was abandoned",
			seq, r.Partial, abandoned)
	}
	sk.event("job %d ok partial=%v extra=%d stages=%d latency=%s", seq, r.Partial, r.ExtraReplicas, len(r.Stages), r.Latency)
}

// killMember is the DAG storm branch: kill a random member's process —
// radio silence plus agent stop, so its running stage work and cached
// stage outputs die with it (downstream pulls must fall back to other
// holders or the controller relay). The half-fleet budget mirrors the
// controller-kill budget: a storm that consumes the whole fleet tests
// nothing.
func (sk *soak) killMember(now sim.Time) {
	if len(sk.d.Members) <= sk.cfg.Vehicles/2 {
		return
	}
	ids := make([]mobility.VehicleID, 0, len(sk.d.Members))
	for id := range sk.d.Members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	id := ids[sk.rng.Intn(len(ids))]
	sk.inj.KillMember(int(id))
	sk.dg.kills++
	sk.report.MemberKills++
	sk.fault("%s kill-member vehicle %d", now, id)
}
