// Storage soak: the data-service workload and its two invariants
// (ISSUE 6). When SoakConfig.Storage selects a backend, a KV workload
// of session clients flows alongside the task workload, the storm
// gains a permanent-departure branch (a vehicle drives away and its
// disk leaves with it), and every invariant sweep audits:
//
//   - durability: an acknowledged write is never lost while at least a
//     reconstruction threshold of its placed holders survives — one
//     holder for whole-copy replication, K distinct members for a
//     (K, M) erasure code (fragment index sets per member are disjoint
//     within a write, so K surviving members always carry K distinct
//     indices). Losses below the threshold are counted, not flagged:
//     that is the regime the service is allowed to lose data in.
//
//   - session monotonicity: a session client never reads backwards.
//     The harness keeps its own external watermark per (client, key) —
//     raised by the client's acked writes and served reads — and flags
//     any served read below it, independent of the backend's internal
//     session tracking.
//
// The backend's view is the fault injector's ground truth (reachable
// means not cut from the coordinator RSU), not the controller's
// membership table, so the invariants judge the storage service against
// what actually happened on the radio — and the same backend is wired
// into the deployment (DeployConfig.Storage), so controller expiry,
// leave, and partition-heal merges drive extra fenced repair passes on
// top of the harness's periodic one.
package chaos

import (
	"fmt"
	"slices"

	"vcloud/internal/sim"
	"vcloud/internal/store"
	"vcloud/internal/vnet"
)

// storageClients is the session-client pool of the KV workload.
var storageClients = []store.ClientID{"veh-a", "veh-b", "veh-c"}

// ackedWrite is the harness's record of the latest acknowledged write
// of one key: the version and the members the backend placed it on.
type ackedWrite struct {
	version store.Version
	placed  []vnet.Addr
}

// storageState is the soak's storage-workload bookkeeping.
type storageState struct {
	backend store.Backend
	// threshold is the surviving-placed-member count that guarantees
	// durability: 1 for whole copies, K for a (K, M) erasure code.
	threshold int
	fleet     []vnet.Addr
	// departed maps permanently-departed members to their departure
	// time (revival order: longest-departed first, returning wiped).
	departed map[vnet.Addr]sim.Time
	acked    map[store.Key]ackedWrite
	// lostAt dedupes loss counting: the highest acked version of each
	// key already counted as lost.
	lostAt map[store.Key]store.Version
	// marks is the external session watermark per (client, key).
	marks             map[store.ClientID]map[store.Key]store.Version
	writeSeq, readSeq int
}

// setupStorage builds the backend over the injector-backed view and
// arms the workload state. Called before Deploy so the deployment can
// wire the backend into its controllers.
func (sk *soak) setupStorage() error {
	scfg := store.Config{
		Consistency:   store.Session,
		Placement:     store.PlaceDwell,
		RetainOffline: true, // crashed holders keep their disks; only departures lose them
	}
	st := &storageState{
		departed: make(map[vnet.Addr]sim.Time),
		acked:    make(map[store.Key]ackedWrite),
		lostAt:   make(map[store.Key]store.Version),
		marks:    make(map[store.ClientID]map[store.Key]store.Version),
	}
	for _, id := range sk.s.VehicleIDs() {
		st.fleet = append(st.fleet, vnet.Addr(id))
	}
	slices.Sort(st.fleet)
	view := store.FuncView{
		MembersFn: func() []vnet.Addr {
			ms := make([]vnet.Addr, 0, len(st.fleet))
			for _, a := range st.fleet {
				if _, gone := st.departed[a]; !gone {
					ms = append(ms, a)
				}
			}
			return ms
		},
		// Reachability from the coordinator RSU's vantage, straight from
		// the injector: crashes, isolations and partitions all count.
		OnlineFn: func(a vnet.Addr) bool {
			if _, gone := st.departed[a]; gone {
				return false
			}
			return !sk.inj.Cut(sk.rsu, a)
		},
	}
	var err error
	switch sk.cfg.Storage {
	case "replicated":
		st.threshold = 1
		scfg.N, scfg.W, scfg.R = 3, 2, 2
		st.backend, err = store.NewReplicated(scfg, view, &store.Stats{})
	case "ec":
		scfg.K, scfg.M = 4, 2
		st.threshold = scfg.K
		st.backend, err = store.NewErasureCoded(scfg, view, &store.Stats{})
	}
	if err != nil {
		return err
	}
	sk.st = st
	return nil
}

// storageKey maps a sequence number onto the rotating key space.
func (sk *soak) storageKey(seq int) store.Key {
	return store.Key(fmt.Sprintf("obj-%02d", seq%sk.cfg.StorageKeys))
}

// mark returns the external watermark for (client, key).
func (st *storageState) mark(c store.ClientID, k store.Key) store.Version {
	return st.marks[c][k]
}

// advance raises the external watermark for (client, key).
func (st *storageState) advance(c store.ClientID, k store.Key, v store.Version) {
	m := st.marks[c]
	if m == nil {
		m = make(map[store.Key]store.Version)
		st.marks[c] = m
	}
	if v > m[k] {
		m[k] = v
	}
}

// storageTick is one workload beat: one write and one read, rotating
// keys and session clients out of phase so clients read keys that
// other clients wrote.
func (sk *soak) storageTick() {
	st := sk.st
	wc := storageClients[st.writeSeq%len(storageClients)]
	wk := sk.storageKey(st.writeSeq)
	ack := store.PutSized(st.backend, wc, wk, 64<<10)
	sk.report.StorageWrites++
	if ack.Acked {
		sk.report.StorageAcked++
		st.acked[wk] = ackedWrite{version: ack.Version, placed: slices.Clone(ack.Placed)}
		st.advance(wc, wk, ack.Version)
	}
	sk.event("put %s v=%d acked=%v placed=%d", wk, ack.Version, ack.Acked, len(ack.Placed))
	st.writeSeq++

	rc := storageClients[(st.readSeq+1)%len(storageClients)]
	rk := sk.storageKey(st.readSeq)
	sk.report.StorageReads++
	if res, ok := store.Get(st.backend, rc, rk); ok {
		sk.report.StorageReadsOK++
		if res.Version < st.mark(rc, rk) {
			sk.violate("storage: session client %s read %s backwards (v%d after observing v%d): a session client never reads backwards",
				rc, rk, res.Version, st.mark(rc, rk))
		}
		st.advance(rc, rk, res.Version)
		sk.event("get %s v=%d replies=%d", rk, res.Version, res.Replies)
	} else {
		sk.event("get %s refused", rk)
	}
	st.readSeq++
}

// storageRepair is the harness's periodic repair pass (the controller
// adds its own on expiry, leave and merge).
func (sk *soak) storageRepair() {
	if created := store.Fix(sk.st.backend); created > 0 {
		sk.event("storage repair created %d", created)
	}
}

// depart permanently removes one vehicle: radio dead, disk forgotten.
// When too many are out, the longest-departed vehicle first returns to
// the fleet — wiped, as a fresh node (its old address, no data).
func (sk *soak) depart(now sim.Time) {
	st := sk.st
	if len(st.departed) > sk.cfg.Vehicles/3 {
		sk.revive(now)
	}
	// Never depart an active controller: that is the kill-controller
	// branch's job, and it keeps its own survivability budget.
	ctl := make(map[vnet.Addr]bool)
	for _, c := range sk.d.ActiveControllers() {
		ctl[c.Addr()] = true
	}
	var pool []vnet.Addr
	for _, a := range st.fleet {
		if _, gone := st.departed[a]; !gone && !ctl[a] {
			pool = append(pool, a)
		}
	}
	if len(pool) == 0 {
		return
	}
	a := pool[sk.rng.Intn(len(pool))]
	st.departed[a] = now
	sk.inj.CrashNode(a)
	dropped := st.backend.Forget(a)
	sk.report.Departures++
	sk.fault("%s departure vehicle %d (%d copies left with it)", now, a, dropped)
}

// revive returns the longest-departed vehicle (lowest address on ties)
// to the fleet as a wiped node.
func (sk *soak) revive(now sim.Time) {
	st := sk.st
	var pick vnet.Addr = -1
	var when sim.Time
	for _, a := range st.fleet {
		t, gone := st.departed[a]
		if !gone {
			continue
		}
		if pick < 0 || t < when || (t == when && a < pick) {
			pick, when = a, t
		}
	}
	if pick < 0 {
		return
	}
	delete(st.departed, pick)
	sk.inj.RecoverNode(pick)
	sk.fault("%s revive vehicle %d (wiped)", now, pick)
}

// checkStorage is the storage half of an invariant sweep: for every
// key's latest acked write, count the placed members that have not
// departed; at or above the threshold the write must still be durable.
func (sk *soak) checkStorage() {
	st := sk.st
	keys := make([]store.Key, 0, len(st.acked))
	for k := range st.acked {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		aw := st.acked[k]
		survivors := 0
		for _, a := range aw.placed {
			if _, gone := st.departed[a]; !gone {
				survivors++
			}
		}
		v, ok := st.backend.Durable(k)
		lost := !ok || v < aw.version
		if lost && st.lostAt[k] < aw.version {
			st.lostAt[k] = aw.version
			sk.report.StorageLost++
			sk.event("storage lost %s v=%d survivors=%d/%d", k, aw.version, survivors, len(aw.placed))
		}
		if lost && survivors >= st.threshold {
			sk.violate("storage: acked write %s v%d lost with %d/%d placed members surviving (threshold %d): no acked write may be lost while a quorum of its replicas survives",
				k, aw.version, survivors, len(aw.placed), st.threshold)
		}
	}
}
