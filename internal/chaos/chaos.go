// Package chaos is the soak harness for the dependability stack: it
// runs a vehicular cloud under a randomized-but-seeded storm of faults
// — member crashes and recoveries, region partitions, loss bursts,
// controller kills, Byzantine flips — for long simulated horizons while
// a continuous workload flows, and asserts the system's safety
// invariants after every step:
//
//   - no task is reported both completed and failed (each submission's
//     callback fires at most once, and the controller's double-finish
//     tripwire stays silent);
//   - no task is orphaned: between events, every in-flight task holds a
//     pending timer or retry round that will eventually move it;
//   - progress counters are monotone and consistent
//     (completed + failed ≤ submitted, failovers never decrease);
//   - result correctness: a completed task whose voter set contained at
//     most ⌊(K−1)/2⌋ possibly-Byzantine workers carries the correct
//     value (the redundant-execution guarantee; the soak runs with
//     trust-weighted voting off, which is the configuration under which
//     that bound is exact).
//
// In SplitBrain mode the storm additionally isolates the active
// controller (standby always left outside) so the cloud splits into two
// live controllers, and two fencing invariants arm:
//
//   - at most one controller is accepted by members per epoch counter;
//   - no task outcome is applied twice across epochs — not by rival
//     controllers, not by a promotee replaying its checkpoint, not by a
//     later voting round.
//
// In Storage mode a replicated or erasure-coded data service soaks
// alongside the task workload (see storage.go): the storm gains a
// permanent-departure branch, and two storage invariants arm — no
// acknowledged write is lost while a quorum of its placed replicas
// survives, and a session client never reads backwards.
//
// "Possibly Byzantine" is a deliberate over-approximation: a voter
// counts as Byzantine for a task if any of its lying intervals
// overlapped the task's lifetime. Over-counting can only skip a check,
// never raise a false alarm, so a reported violation is always real.
//
// Every random draw — fault mix, targets, timings, Byzantine flips —
// comes from named kernel streams, so a soak is a pure function of its
// config: the FNV-1a checksum over the canonical event log is
// bit-for-bit reproducible under the same seed, and any violation
// replays exactly.
package chaos

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"vcloud/internal/attack"
	"vcloud/internal/faults"
	"vcloud/internal/geo"
	"vcloud/internal/mobility"
	"vcloud/internal/radio"
	"vcloud/internal/roadnet"
	"vcloud/internal/scenario"
	"vcloud/internal/sim"
	"vcloud/internal/vcloud"
	"vcloud/internal/vnet"
)

// SoakConfig tunes a soak run. Zero values take defaults.
type SoakConfig struct {
	// Seed drives everything; equal seeds replay equal soaks.
	Seed int64
	// Vehicles is the parked fleet size. Default 20.
	Vehicles int
	// ByzFraction of members lie about results (WrongProb 1 while
	// active; "byz-flip" faults toggle them). Default 0.2.
	ByzFraction float64
	// Duration is the soaked horizon after warm-up. Default 10 min.
	Duration sim.Time
	// Warmup lets the cloud form before the storm. Default 10 s.
	Warmup sim.Time
	// Drain lets in-flight tasks settle after the horizon before the
	// final audit. Default 30 s.
	Drain sim.Time
	// TaskEvery is the workload submission period. Default 500 ms.
	TaskEvery sim.Time
	// TaskOps sizes each task. Default 1500.
	TaskOps float64
	// FaultEvery is the mean fault injection period. Default 5 s.
	FaultEvery sim.Time
	// CheckEvery is the invariant-check period. Default 1 s.
	CheckEvery sim.Time
	// Policy is the dependability policy under soak. Defaults to
	// 3 replicas, 3 retries, trust weighting off (see package comment).
	Policy *vcloud.DependabilityPolicy
	// SplitBrain deploys the cloud with epoch fencing and adds a storm
	// branch that isolates the active controller (with a random minority
	// of its members, never its standby) so the standby promotes and the
	// cloud splits into two live controllers until the isolation heals.
	// It also arms two extra invariants: at most one controller accepted
	// per epoch, and no task outcome applied twice across epochs.
	SplitBrain bool
	// Storage arms the data-service workload: "" (off), "replicated"
	// (strict-quorum whole copies, N=3 W=2 R=2) or "ec" (a (4, 2)
	// erasure code). See storage.go for the workload, the departure
	// storm branch, and the two storage invariants it arms.
	Storage string
	// StorageKeys is the rotating key-space size. Default 50.
	StorageKeys int
	// StorageEvery is the KV workload period (one write plus one read
	// per beat). Default 500 ms.
	StorageEvery sim.Time
	// StorageRepairEvery is the harness's repair period (the controller
	// adds churn-driven passes on top). Default 2 s.
	StorageRepairEvery sim.Time
	// StorageDepartEvery is the permanent-departure churn period: every
	// beat one vehicle drives away for good, its disk with it (and the
	// longest-departed returns wiped once a third of the fleet is out).
	// Default 15 s.
	StorageDepartEvery sim.Time
	// DAG arms the dependent-stage job workload: a stream of randomly-
	// shaped DAG jobs soaks alongside the task workload, the storm gains
	// a kill-member branch (member-process death, not just radio
	// silence), and the DAG invariants arm — no stage outcome applied
	// twice, completed job implies ancestor completeness, replica budget
	// never exceeded. See dag.go.
	DAG bool
	// DAGEvery is the DAG job submission period. Default 3 s.
	DAGEvery sim.Time
	// Saturate arms the congestion workload (see saturate.go): a shared
	// contended uplink to a conventional cloud, a placement governor
	// routing a ramping task stream between the vehicle tier and the
	// cloud tier on live bandwidth estimates, a storm branch of uplink
	// loss bursts and brief outages, and three saturation invariants —
	// no tier queue grows past its bound, shed work is only ever
	// optional, and the bandwidth estimate stays within the channel's
	// configured capacity.
	Saturate bool
	// SaturateEvery is the congestion workload's submission beat; the
	// per-beat batch size ramps over the horizon, so load climbs from
	// under-subscribed to saturating. Default 250 ms.
	SaturateEvery sim.Time
	// SaturateDeadline is the relative deadline stamped on congestion-
	// workload tasks. Default 8 s.
	SaturateDeadline sim.Time
}

func (c SoakConfig) withDefaults() SoakConfig {
	if c.Vehicles == 0 {
		c.Vehicles = 20
	}
	if c.ByzFraction == 0 {
		c.ByzFraction = 0.2
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Minute
	}
	if c.Warmup == 0 {
		c.Warmup = 10 * time.Second
	}
	if c.Drain == 0 {
		c.Drain = 30 * time.Second
	}
	if c.TaskEvery == 0 {
		c.TaskEvery = 500 * time.Millisecond
	}
	if c.TaskOps == 0 {
		c.TaskOps = 1500
	}
	if c.FaultEvery == 0 {
		c.FaultEvery = 5 * time.Second
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = time.Second
	}
	if c.Policy == nil {
		c.Policy = &vcloud.DependabilityPolicy{Replicas: 3, MaxRetries: 3}
	}
	if c.StorageKeys == 0 {
		c.StorageKeys = 50
	}
	if c.StorageEvery == 0 {
		c.StorageEvery = 500 * time.Millisecond
	}
	if c.StorageRepairEvery == 0 {
		c.StorageRepairEvery = 2 * time.Second
	}
	if c.StorageDepartEvery == 0 {
		c.StorageDepartEvery = 15 * time.Second
	}
	if c.DAGEvery == 0 {
		c.DAGEvery = 3 * time.Second
	}
	if c.SaturateEvery == 0 {
		c.SaturateEvery = 250 * time.Millisecond
	}
	if c.SaturateDeadline == 0 {
		c.SaturateDeadline = 8 * time.Second
	}
	return c
}

// Validate checks config sanity.
func (c SoakConfig) Validate() error {
	if c.Vehicles < 0 || c.ByzFraction < 0 || c.ByzFraction > 1 {
		return fmt.Errorf("chaos: vehicles must be >= 0 and byz fraction in [0,1]")
	}
	if c.Duration < 0 || c.Warmup < 0 || c.Drain < 0 || c.TaskEvery < 0 ||
		c.FaultEvery < 0 || c.CheckEvery < 0 || c.StorageEvery < 0 || c.StorageRepairEvery < 0 ||
		c.StorageDepartEvery < 0 || c.DAGEvery < 0 || c.SaturateEvery < 0 || c.SaturateDeadline < 0 {
		return fmt.Errorf("chaos: durations must be >= 0")
	}
	switch c.Storage {
	case "", "replicated", "ec":
	default:
		return fmt.Errorf(`chaos: storage must be "", "replicated" or "ec", got %q`, c.Storage)
	}
	if c.StorageKeys < 0 {
		return fmt.Errorf("chaos: storage keys must be >= 0")
	}
	if c.TaskOps < 0 || math.IsNaN(c.TaskOps) || math.IsInf(c.TaskOps, 0) {
		return fmt.Errorf("chaos: task ops must be finite and >= 0")
	}
	if c.Policy != nil {
		return c.Policy.Validate()
	}
	return nil
}

// Report is the outcome of a soak run.
type Report struct {
	// Submitted counts tasks entered; Refused counts submissions no
	// active controller would take (cloud headless mid-failover).
	Submitted int
	Refused   int
	// Completed/Failed count callback outcomes. Tasks resumed by a
	// failover successor lose their callbacks, so these can undercount
	// the controller's own totals — the reconciliation the invariant
	// checker performs accounts for that.
	Completed int
	Failed    int
	// Correct/Wrong split completed tasks by result value. Unchecked
	// counts completions whose voter set had too many possibly-
	// Byzantine members for the ⌊(K−1)/2⌋ guarantee to apply.
	Correct   int
	Wrong     int
	Unchecked int
	// FaultsInjected counts storm events; FaultLog holds one line each.
	FaultsInjected int
	FaultLog       []string
	// Failovers is the controller promotions the run saw.
	Failovers uint64
	// Split-brain counters (meaningful when SplitBrain is on).
	// SplitBrains counts controller-isolation storms injected; Epochs is
	// the highest epoch round any member accepted; the rest mirror the
	// fencing counters in vcloud.Stats at the end of the run.
	SplitBrains   int
	Epochs        uint64
	Abdications   uint64
	Merges        uint64
	Adopted       uint64
	Deduped       uint64
	StaleRejected uint64
	// Storage workload counters (meaningful when Storage is set).
	// StorageLost counts acked writes that became unreconstructible
	// below the survivor threshold — the regime the service is allowed
	// to lose data in; a loss at or above the threshold is a violation
	// instead. Departures counts permanent departures injected.
	StorageWrites   int
	StorageAcked    int
	StorageReads    int
	StorageReadsOK  int
	StorageLost     int
	StorageRepaired uint64
	Departures      int
	// DAG workload counters (meaningful when DAG is on). JobsResumed
	// counts jobs a failover successor picked up from a checkpoint (their
	// callbacks are lost, so completed+failed may undercount submitted by
	// exactly the resumed jobs still finishing elsewhere). MemberKills
	// counts kill-member storm events: process deaths, on top of the
	// radio-only crash branch.
	JobsSubmitted int
	JobsRefused   int
	JobsCompleted int
	JobsPartial   int
	JobsFailed    int
	JobsResumed   uint64
	StageRetries  uint64
	StageRelays   uint64
	StageHandoffs uint64
	MemberKills   int
	// Congestion workload counters (meaningful when Saturate is on).
	// SatSubmitted splits into SatRequired + optional; SatCompleted
	// counts deadline-met completions of either kind. SatShed /
	// SatAdmission / SatBackpressured are the governor's structured
	// rejections; SatPlacedVehicle / SatPlacedCloud are where admitted
	// work landed. The Uplink* quadruple is the shared channel's final
	// counter state — Lost is stochastic channel loss, Dropped is
	// outage windows, FIFO tail drops and shed flights (the split the
	// vcloudsim summary prints).
	SatSubmitted     int
	SatRequired      int
	SatCompleted     int
	SatFailed        int
	SatShed          int
	SatAdmission     int
	SatBackpressured int
	SatLossBursts    int
	SatOutages       int
	SatPlacedVehicle uint64
	SatPlacedCloud   uint64
	TierSwitches     uint64
	UplinkSent       uint64
	UplinkDelivered  uint64
	UplinkLost       uint64
	UplinkDropped    uint64
	// Violations holds every invariant breach, deduplicated. Empty is
	// the passing state.
	Violations []string
	// Checks counts invariant sweeps performed.
	Checks int
	// Checksum is an FNV-1a digest over the canonical event log —
	// bit-for-bit identical across runs with equal configs.
	Checksum uint64
	// Events is the canonical event log the checksum covers.
	Events []string
}

// byzWindow is one interval during which a worker lied.
type byzWindow struct{ from, to sim.Time }

// soakTask tracks one submission by sequence number (task IDs can
// collide after a stale-checkpoint promotion; sequence numbers cannot).
type soakTask struct {
	task      vcloud.Task
	submitted sim.Time
	fired     int
}

type soak struct {
	cfg   SoakConfig
	s     *scenario.Scenario
	d     *vcloud.Deployment
	stats *vcloud.Stats
	inj   *faults.Injector
	rng   *rand.Rand // "chaos.plan" stream: fault mix and targets

	byz        map[vnet.Addr]*attack.ByzantineWorker
	byzWindows map[vnet.Addr][]byzWindow

	// st is the storage workload state (nil unless cfg.Storage is set);
	// rsu is the coordinator vantage its reachability view probes from.
	st  *storageState
	rsu vnet.Addr
	// dg is the DAG workload state (nil unless cfg.DAG is on).
	dg *dagState
	// sat is the congestion workload state (nil unless cfg.Saturate is
	// on).
	sat *satState

	tasks      []*soakTask
	report     *Report
	violations map[string]bool
	// lastKill gates controller kills: a fresh promotee needs time to
	// gather members and replicate a checkpoint before it can be killed
	// survivably, so kills are spaced by killSpacing. lastSplit gates
	// split-brain isolations for the same reason: back-to-back splits
	// would starve the merged survivor of the checkpoint round it needs
	// before its next standby can promote survivably.
	lastKill  sim.Time
	lastSplit sim.Time
	// Fencing invariant registries (SplitBrain mode). epochClaim maps an
	// epoch counter to the controller members accepted it from; a second
	// claimant at the same counter is a split-brain safety breach.
	// applies counts outcome applications per task ID; two applications
	// of one ID — across epochs, controllers, or voting rounds — is a
	// duplicated outcome the fencing ledger should have deduplicated.
	epochClaim map[uint64]vnet.Addr
	applies    map[vcloud.TaskID]applyRecord
	// monotonicity watermarks.
	lastSubmitted, lastCompleted, lastFailed, lastFailovers uint64
}

// killSpacing is the minimum gap between controller kills. It covers
// failover detection (FailoverTTL) plus member re-join and at least one
// checkpoint replication to the successor's own standby; killing faster
// than that makes the storm unsurvivable by design, which is a fault in
// the harness rather than the system under test.
const killSpacing = 20 * time.Second

// Soak runs one full soak and returns its report. The report's
// Violations being empty is the pass criterion.
func Soak(cfg SoakConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	net, err := roadnet.ParkingLot(roadnet.ParkingLotSpec{Aisles: 4, AisleLenM: 200, AisleGapM: 40})
	if err != nil {
		return nil, err
	}
	s, err := scenario.New(scenario.Spec{Seed: cfg.Seed, Network: net, NumVehicles: cfg.Vehicles, Parked: true})
	if err != nil {
		return nil, err
	}
	if _, err := s.AddRSU(geo.Point{X: 0, Y: 0}); err != nil {
		return nil, err
	}
	sk := &soak{
		cfg:        cfg,
		s:          s,
		rng:        s.Kernel.NewStream("chaos.plan"),
		byz:        make(map[vnet.Addr]*attack.ByzantineWorker),
		byzWindows: make(map[vnet.Addr][]byzWindow),
		report:     &Report{},
		violations: make(map[string]bool),
		epochClaim: make(map[uint64]vnet.Addr),
		applies:    make(map[vcloud.TaskID]applyRecord),
	}
	stats := &vcloud.Stats{}
	dcfg := vcloud.DeployConfig{
		Failover:   true,
		Controller: vcloud.ControllerConfig{Depend: cfg.Policy},
	}
	if cfg.SplitBrain {
		dcfg.Fencing = true
		dcfg.OnApply = sk.onApply
		dcfg.OnAccept = sk.onAccept
	}
	if cfg.Storage != "" {
		if err := sk.setupStorage(); err != nil {
			return nil, err
		}
		// The deployment drives the same backend: expiry, leave and
		// partition-heal merges add fenced repair passes to the storm.
		dcfg.Storage = sk.st.backend
	}
	d, err := vcloud.Deploy(s, vcloud.Stationary, dcfg, stats)
	if err != nil {
		return nil, err
	}
	inj, err := faults.NewInjector(s)
	if err != nil {
		return nil, err
	}
	inj.OnControllerKill(func(idx int) {
		ctls := d.ActiveControllers()
		if idx >= 0 && idx < len(ctls) {
			ctls[idx].Crash()
		}
	})
	inj.OnMemberKill(func(id int) {
		if m, ok := d.Members[mobility.VehicleID(id)]; ok {
			m.Stop()
			delete(d.Members, mobility.VehicleID(id))
		}
	})
	sk.d, sk.stats, sk.inj = d, stats, inj
	sk.rsu = d.Controllers[0].Addr()
	if cfg.DAG {
		sk.setupDAG()
	}
	if cfg.Saturate {
		if err := sk.setupSaturate(); err != nil {
			return nil, err
		}
	}
	if err := sk.byzantify(); err != nil {
		return nil, err
	}
	if err := s.Start(); err != nil {
		return nil, err
	}
	if err := s.RunFor(cfg.Warmup); err != nil {
		return nil, err
	}

	taskT, err := s.Kernel.Every(cfg.TaskEvery, sk.submitOne)
	if err != nil {
		return nil, err
	}
	faultT, err := s.Kernel.Every(cfg.FaultEvery, sk.injectFault)
	if err != nil {
		return nil, err
	}
	checkT, err := s.Kernel.Every(cfg.CheckEvery, sk.check)
	if err != nil {
		return nil, err
	}
	var dagT *sim.Ticker
	if cfg.DAG {
		if dagT, err = s.Kernel.Every(cfg.DAGEvery, sk.dagTick); err != nil {
			return nil, err
		}
	}
	var satT *sim.Ticker
	if cfg.Saturate {
		if satT, err = s.Kernel.Every(cfg.SaturateEvery, sk.saturateTick); err != nil {
			return nil, err
		}
	}
	var storeT, repairT, departT *sim.Ticker
	if cfg.Storage != "" {
		if storeT, err = s.Kernel.Every(cfg.StorageEvery, sk.storageTick); err != nil {
			return nil, err
		}
		if repairT, err = s.Kernel.Every(cfg.StorageRepairEvery, sk.storageRepair); err != nil {
			return nil, err
		}
		// Departures are their own deterministic churn clock, not a storm
		// roll: every soak exercises the loss-and-repair cycle the storage
		// invariants exist to audit, at a controlled rate.
		if departT, err = s.Kernel.Every(cfg.StorageDepartEvery, func() { sk.depart(s.Kernel.Now()) }); err != nil {
			return nil, err
		}
	}
	if err := s.RunFor(cfg.Duration); err != nil {
		return nil, err
	}
	// Storm over: stop injecting and submitting, let in-flight work
	// settle, then audit one last time.
	taskT.Stop()
	faultT.Stop()
	if dagT != nil {
		dagT.Stop()
	}
	if satT != nil {
		satT.Stop()
	}
	if storeT != nil {
		storeT.Stop()
		repairT.Stop()
		departT.Stop()
	}
	if err := s.RunFor(cfg.Drain); err != nil {
		return nil, err
	}
	checkT.Stop()
	sk.check()
	sk.finalize()
	return sk.report, nil
}

// byzantify turns the configured fraction of members Byzantine, lowest
// vehicle IDs first (deterministic; which IDs are low is arbitrary with
// respect to the parking layout).
func (sk *soak) byzantify() error {
	ids := make([]mobility.VehicleID, 0, len(sk.d.Members))
	for id := range sk.d.Members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	n := int(math.Round(sk.cfg.ByzFraction * float64(len(ids))))
	for _, id := range ids[:n] {
		m := sk.d.Members[id]
		b, err := attack.Byzantify(m, 1, nil)
		if err != nil {
			return err
		}
		sk.byz[m.Addr()] = b
		sk.byzWindows[m.Addr()] = []byzWindow{{from: 0, to: -1}} // open
	}
	return nil
}

// setByz flips a worker's lying state, closing or opening its window.
func (sk *soak) setByz(a vnet.Addr, on bool) {
	b := sk.byz[a]
	if b == nil || b.Active() == on {
		return
	}
	b.SetActive(on)
	now := sk.s.Kernel.Now()
	ws := sk.byzWindows[a]
	if on {
		sk.byzWindows[a] = append(ws, byzWindow{from: now, to: -1})
	} else if len(ws) > 0 && ws[len(ws)-1].to < 0 {
		ws[len(ws)-1].to = now
	}
}

// possiblyByz reports whether worker a had any lying interval
// overlapping [t0, t1].
func (sk *soak) possiblyByz(a vnet.Addr, t0, t1 sim.Time) bool {
	for _, w := range sk.byzWindows[a] {
		end := w.to
		if end < 0 {
			end = t1 // still open
		}
		if w.from <= t1 && end >= t0 {
			return true
		}
	}
	return false
}

// submitOne enters one workload task and registers its outcome hooks.
func (sk *soak) submitOne() {
	seq := len(sk.tasks)
	st := &soakTask{
		task:      vcloud.Task{Ops: sk.cfg.TaskOps, InputBytes: 1000, OutputBytes: 500},
		submitted: sk.s.Kernel.Now(),
	}
	sk.tasks = append(sk.tasks, st)
	err := sk.d.SubmitAnywhere(st.task, func(r vcloud.TaskResult) {
		sk.onOutcome(seq, r)
	})
	if err != nil {
		sk.report.Refused++
		sk.event("task %d refused at %s", seq, sk.s.Kernel.Now())
		return
	}
	sk.report.Submitted++
}

// onOutcome records a task callback and checks the per-task invariants:
// single firing, and result correctness under the Byzantine bound.
func (sk *soak) onOutcome(seq int, r vcloud.TaskResult) {
	st := sk.tasks[seq]
	st.fired++
	if st.fired > 1 {
		sk.violate("task seq %d reported %d outcomes (completed and failed must be exclusive)", seq, st.fired)
		return
	}
	now := sk.s.Kernel.Now()
	if !r.OK {
		sk.report.Failed++
		sk.event("task %d failed reason=%q retries=%d replicas=%d", seq, r.Reason, r.Retries, r.Replicas)
		return
	}
	sk.report.Completed++
	// The controller assigned the task its ID after submission; workers
	// hashed that ID into their values, so the reference must too.
	ref := st.task
	ref.ID = r.ID
	correct := vcloud.TaskValue(ref)
	// Count possibly-Byzantine voters over the task's lifetime; the
	// over-approximation can only widen this set (see package comment).
	nByz := 0
	for _, v := range r.Voters {
		if sk.possiblyByz(v, st.submitted, now) {
			nByz++
		}
	}
	if 2*nByz < len(r.Voters) {
		if r.Value == correct {
			sk.report.Correct++
		} else {
			sk.report.Wrong++
			sk.violate("task seq %d decided wrong value with %d/%d possibly-byzantine voters", seq, nByz, len(r.Voters))
		}
	} else {
		sk.report.Unchecked++
		if r.Value == correct {
			sk.report.Correct++
		} else {
			sk.report.Wrong++ // majority-Byzantine voter set: no guarantee, count but don't flag
		}
	}
	sk.event("task %d ok value=%d retries=%d replicas=%d voters=%d", seq, r.Value, r.Retries, r.Replicas, len(r.Voters))
}

// injectFault draws one storm event: crash (with auto-recovery),
// partition, loss burst, controller kill, or Byzantine flip — plus, in
// SplitBrain mode, controller isolations that force a rival promotion.
func (sk *soak) injectFault() {
	roll := sk.rng.Float64()
	now := sk.s.Kernel.Now()
	if sk.cfg.SplitBrain && roll < 0.30 {
		sk.splitBrain(now)
		return
	}
	// The kill-member branch carves its slice out of the byz-flip range
	// only when the DAG workload is on, so non-DAG soaks keep their exact
	// storm sequence (and checksums).
	if sk.cfg.DAG && roll >= 0.92 {
		sk.killMember(now)
		return
	}
	// The saturation branch likewise carves [0.85, 0.92) out of byz-flip
	// only when the congestion workload is on: uplink loss bursts and
	// brief outages that the bandwidth estimator must ride out.
	if sk.cfg.Saturate && roll >= 0.85 && roll < 0.92 {
		sk.saturateStorm(now)
		return
	}
	switch {
	case roll < 0.35:
		// Crash a random vehicle's radio for 5–20 s.
		ids := sk.s.VehicleIDs()
		if len(ids) == 0 {
			return
		}
		id := ids[sk.rng.Intn(len(ids))]
		dur := sim.Time(5+sk.rng.Float64()*15) * time.Second
		sk.inj.CrashNode(vnet.Addr(id))
		sk.s.Kernel.After(dur, func() { sk.inj.RecoverNode(vnet.Addr(id)) })
		sk.fault("%s crash vehicle %d for %s", now, id, dur)
	case roll < 0.55:
		// Partition a circular region for 5–15 s.
		b := sk.s.Network.Bounds()
		c := geo.Point{
			X: b.Min.X + sk.rng.Float64()*b.Width(),
			Y: b.Min.Y + sk.rng.Float64()*b.Height(),
		}
		radius := 50 + sk.rng.Float64()*150
		dur := sim.Time(5+sk.rng.Float64()*10) * time.Second
		heal := sk.inj.StartPartition(c, radius)
		sk.s.Kernel.After(dur, heal)
		sk.fault("%s partition r=%.0fm at %.0f,%.0f for %s", now, radius, c.X, c.Y, dur)
	case roll < 0.75:
		// Loss burst 10–40% for 3–10 s.
		p := 0.1 + sk.rng.Float64()*0.3
		dur := sim.Time(3+sk.rng.Float64()*7) * time.Second
		sk.inj.SetLoss(p)
		sk.s.Kernel.After(dur, func() { sk.inj.SetLoss(0) })
		sk.fault("%s loss p=%.2f for %s", now, p, dur)
	case roll < 0.85:
		// Kill the busiest controller; failover must take over. Keep a
		// kill budget so a long storm cannot consume the whole fleet
		// (every promotion costs one worker).
		ctls := sk.d.ActiveControllers()
		if len(ctls) == 0 || len(sk.d.Members) <= sk.cfg.Vehicles/2 ||
			(sk.lastKill > 0 && now-sk.lastKill < killSpacing) {
			return
		}
		sk.lastKill = now
		ctls[sk.rng.Intn(len(ctls))].Crash()
		sk.fault("%s kill-controller", now)
	default:
		// Flip a random Byzantine worker honest, or back.
		if len(sk.byz) == 0 {
			return
		}
		addrs := make([]vnet.Addr, 0, len(sk.byz))
		for a := range sk.byz {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		a := addrs[sk.rng.Intn(len(addrs))]
		sk.setByz(a, !sk.byz[a].Active())
		sk.fault("%s byz-flip worker %d -> %v", now, a, sk.byz[a].Active())
	}
}

// splitBrain isolates the active controller together with a random
// minority of its members — never its standby — for long enough that
// the standby stops hearing advertisements, promotes, and the cloud
// runs two live controllers until the isolation heals and the epoch
// battle merges them back into one.
func (sk *soak) splitBrain(now sim.Time) {
	if sk.lastSplit > 0 && now-sk.lastSplit < killSpacing {
		return
	}
	ctls := sk.d.ActiveControllers()
	if len(ctls) == 0 {
		return
	}
	c := ctls[sk.rng.Intn(len(ctls))]
	standby := c.StandbyAddr()
	if !c.Fenced() || standby < 0 {
		return // no standby: isolation would only make the cloud headless
	}
	var pool []radio.NodeID
	for _, a := range c.Members() {
		if a != standby && a != c.Addr() {
			pool = append(pool, radio.NodeID(a))
		}
	}
	sk.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	n := 0
	if len(pool) > 0 {
		n = sk.rng.Intn(len(pool)/2 + 1)
	}
	dur := sim.Time(10+sk.rng.Float64()*10) * time.Second
	heal := sk.inj.StartIsolation(radio.NodeID(c.Addr()), pool[:n])
	sk.s.Kernel.After(dur, heal)
	sk.lastSplit = now
	sk.report.SplitBrains++
	sk.fault("%s split-brain isolate controller %d with %d kept members for %s", now, c.Addr(), n, dur)
}

// onAccept is the member-side fencing probe: every fenced follow
// reports (controller, epoch). Two distinct controllers accepted at the
// same epoch counter is the split-brain safety breach fencing exists to
// prevent.
func (sk *soak) onAccept(ctl vnet.Addr, e vcloud.Epoch) {
	if r := e.Round(); r > sk.report.Epochs {
		sk.report.Epochs = r
	}
	if prev, ok := sk.epochClaim[e.Counter]; ok && prev != ctl {
		sk.violate("epoch %v accepted from two controllers (%d then %d): at most one controller may be accepted per epoch",
			e, prev, ctl)
		return
	}
	sk.epochClaim[e.Counter] = ctl
}

// onApply is the controller-side fencing probe: each application of a
// task outcome reports its ID. A second application of the same ID —
// on the same controller, a rival, or a later epoch's voting round —
// is a duplicated outcome the (task, epoch) ledger should have caught.
func (sk *soak) onApply(id vcloud.TaskID, epoch uint64, ok bool) {
	ar := sk.applies[id]
	ar.count++
	if ar.count == 1 {
		ar.epoch = epoch
	}
	sk.applies[id] = ar
	if ar.count > 1 {
		// An epoch counter encodes its claimant's address in the low bits,
		// so naming both epochs identifies both appliers.
		sk.violate("task %d applied %d times (first epoch %d, now epoch %d): no task outcome may be applied twice across epochs",
			id, ar.count, ar.epoch, epoch)
	}
}

// applyRecord remembers how often — and first under which epoch — a
// task's outcome was applied.
type applyRecord struct {
	count int
	epoch uint64
}

// check is one invariant sweep: controller self-audits plus counter
// monotonicity and accounting.
func (sk *soak) check() {
	sk.report.Checks++
	if sk.st != nil {
		sk.checkStorage()
	}
	if sk.sat != nil {
		sk.checkSaturate()
	}
	for _, c := range sk.d.Controllers {
		if c.Stopped() {
			continue // a crashed controller's task table is dead, not stuck
		}
		for _, v := range c.InvariantViolations() {
			sk.violate("controller %d: %s", c.Addr(), v)
		}
	}
	sub, comp, fail := sk.stats.Submitted.Value(), sk.stats.Completed.Value(), sk.stats.Failed.Value()
	fo := sk.stats.Failovers.Value()
	// Accounting uses the soak's own callback counts, not the global
	// stats: a stale-checkpoint promotion may re-execute a task its dead
	// predecessor already finished, so the per-controller counters are
	// at-least-once and can legitimately exceed submissions. The
	// callback path is exactly-once (enforced by the fired>1 check).
	if sk.report.Completed+sk.report.Failed > sk.report.Submitted {
		sk.violate("accounting: completed %d + failed %d > submitted %d",
			sk.report.Completed, sk.report.Failed, sk.report.Submitted)
	}
	if sk.dg != nil && sk.report.JobsCompleted+sk.report.JobsFailed > sk.report.JobsSubmitted {
		sk.violate("accounting: jobs completed %d + failed %d > submitted %d",
			sk.report.JobsCompleted, sk.report.JobsFailed, sk.report.JobsSubmitted)
	}
	if sub < sk.lastSubmitted || comp < sk.lastCompleted || fail < sk.lastFailed || fo < sk.lastFailovers {
		sk.violate("monotonicity: counters went backwards (submitted %d<%d or completed %d<%d or failed %d<%d or failovers %d<%d)",
			sub, sk.lastSubmitted, comp, sk.lastCompleted, fail, sk.lastFailed, fo, sk.lastFailovers)
	}
	sk.lastSubmitted, sk.lastCompleted, sk.lastFailed, sk.lastFailovers = sub, comp, fail, fo
}

// violate records a deduplicated invariant breach in the event log.
func (sk *soak) violate(format string, args ...interface{}) {
	msg := fmt.Sprintf(format, args...)
	if sk.violations[msg] {
		return
	}
	sk.violations[msg] = true
	sk.report.Violations = append(sk.report.Violations, msg)
	sk.event("VIOLATION %s", msg)
}

// fault logs one storm event to both the fault log and the event log.
func (sk *soak) fault(format string, args ...interface{}) {
	line := fmt.Sprintf(format, args...)
	sk.report.FaultsInjected++
	sk.report.FaultLog = append(sk.report.FaultLog, line)
	sk.event("fault %s", line)
}

// event appends one line to the canonical (checksummed) event log.
func (sk *soak) event(format string, args ...interface{}) {
	sk.report.Events = append(sk.report.Events, fmt.Sprintf(format, args...))
}

// finalize computes the checksum and closing counters.
func (sk *soak) finalize() {
	sk.report.Failovers = sk.stats.Failovers.Value()
	sk.report.Abdications = sk.stats.Abdications.Value()
	sk.report.Merges = sk.stats.Merges.Value()
	sk.report.Adopted = sk.stats.Adopted.Value()
	sk.report.Deduped = sk.stats.Deduped.Value()
	sk.report.StaleRejected = sk.stats.StaleRejected.Value()
	if sk.st != nil {
		sk.report.StorageRepaired = sk.st.backend.Stats().ReReplicas.Value()
	}
	if sk.dg != nil {
		sk.report.JobsResumed = sk.stats.JobsResumed.Value()
		sk.report.StageRetries = sk.stats.StageRetries.Value()
		sk.report.StageRelays = sk.stats.StageRelays.Value()
		sk.report.StageHandoffs = sk.stats.StageHandoffs.Value()
	}
	if sk.sat != nil {
		sk.finalizeSaturate()
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, line := range sk.report.Events {
		for i := 0; i < len(line); i++ {
			h ^= uint64(line[i])
			h *= prime64
		}
		h ^= '\n'
		h *= prime64
	}
	sk.report.Checksum = h
}
