// Saturation soak: the congestion workload and its invariants
// (ISSUE 8). When SoakConfig.Saturate is on, the harness stands up a
// contended shared uplink to a conventional cloud, attaches a GCC-style
// bandwidth estimator to it (internal/radio/gcc.go), and drives a
// ramping task stream through the placement governor
// (internal/vcloud/governor.go) fronting two tiers: the vehicular cloud
// itself (through the deployment's most-members-first active
// controller, so placement keeps working across failovers) and the
// remote cloud over the contended link. The storm gains a saturation
// branch — uplink loss bursts and brief outages the estimator has to
// ride out — and every sweep audits the overload-control contract:
//
//   - no tier queue grows past its configured bound (backpressure, not
//     unbounded buffering, absorbs overload);
//
//   - the channel's FIFO backlog stays bounded by the tail-drop policy
//     (at most the queue cap plus one in-service transfer);
//
//   - shed work is only ever optional: a required task may be
//     backpressured or admission-rejected, never load-shed;
//
//   - the bandwidth estimate stays within the channel's physical
//     capacity — the estimator may be wrong, but never claims a rate
//     the link cannot carry.
package chaos

import (
	"math/rand"
	"time"

	"vcloud/internal/radio"
	"vcloud/internal/sim"
	"vcloud/internal/vcloud"
)

// Saturation workload shape. The link is sized so the ramp crosses from
// under-subscribed to saturating inside the soak horizon: at full ramp
// the offered payload exceeds the uplink's capacity, forcing the
// governor to spill to the vehicle tier, shed optional work, and
// backpressure.
const (
	satUplinkMbps   = 8
	satCloudCPU     = 1e6 // datacenter ops/s: compute is never the cloud bottleneck
	satVehicleCPU   = 1000.0
	satTaskOps      = 1500.0
	satInputBytes   = 40_000
	satOutputBytes  = 10_000
	satMaxBatch     = 8   // submissions per beat at full ramp
	satOptionalFrac = 0.4 // fraction of the stream that is sheddable
)

// satTask tracks one congestion-workload submission.
type satTask struct {
	optional bool
	deadline sim.Time
	fired    int
}

// satState is the soak's congestion-workload bookkeeping.
type satState struct {
	// rng is the dedicated "chaos.saturate" stream shaping the workload
	// mix and the storm draws, so the saturation soak replays
	// bit-for-bit per seed.
	rng    *rand.Rand
	uplink *radio.Uplink
	sender *radio.Sender
	gov    *vcloud.Governor
	tasks  []*satTask
	// baseLoss is the healthy loss probability storms restore to.
	// lossToken / outageToken sequence the restores so an older storm's
	// scheduled restore cannot clobber a newer storm's window.
	baseLoss    float64
	lossToken   uint64
	outageToken uint64
}

// setupSaturate stands up the contended uplink, the estimator-backed
// sender, the two-tier governor, and the workload state.
func (sk *soak) setupSaturate() error {
	k := sk.s.Kernel
	up, err := radio.NewUplink(k, radio.UplinkParams{
		BaseRTT:       60 * time.Millisecond,
		BandwidthMbps: satUplinkMbps,
		LossProb:      0.02,
		JitterFrac:    0.1,
		Contended:     true,
	})
	if err != nil {
		return err
	}
	sender := up.NewSender(radio.BWEConfig{})
	cloud, err := vcloud.NewRemoteCloudSender("soak-cloud", k, sender, satCloudCPU, sk.stats)
	if err != nil {
		return err
	}
	gov, err := vcloud.NewGovernor(k, vcloud.GovernorConfig{
		Tiers: []vcloud.GovernorTier{
			// Index 0: the vehicular cloud — network-free, modest compute.
			{Tier: vcloud.TierVehicle, Backend: vcloud.DeploymentBackend{D: sk.d},
				CPU: float64(sk.cfg.Vehicles) * satVehicleCPU},
			// Index 1: the conventional cloud behind the contended uplink,
			// with the sender as its live congestion feed.
			{Tier: vcloud.TierCloud, Backend: cloud, CPU: satCloudCPU,
				NominalBps: satUplinkMbps * 1e6, BaseRTT: 60 * time.Millisecond,
				Sender: sender},
		},
	}, sk.stats)
	if err != nil {
		return err
	}
	sk.sat = &satState{
		rng:      k.NewStream("chaos.saturate"),
		uplink:   up,
		sender:   sender,
		gov:      gov,
		baseLoss: 0.02,
	}
	return nil
}

// saturateTick submits one beat of the congestion workload. The batch
// size ramps linearly over the soak horizon, so the stream crosses from
// under-subscribed to saturating and the sweeps observe the governor on
// both sides of the knee.
func (sk *soak) saturateTick() {
	sat := sk.sat
	now := sk.s.Kernel.Now()
	progress := float64(now-sk.cfg.Warmup) / float64(sk.cfg.Duration)
	if progress < 0 {
		progress = 0
	}
	if progress > 1 {
		progress = 1
	}
	batch := 1 + int(progress*float64(satMaxBatch-1))
	for i := 0; i < batch; i++ {
		seq := len(sat.tasks)
		st := &satTask{
			optional: sat.rng.Float64() < satOptionalFrac,
			deadline: now + sk.cfg.SaturateDeadline,
		}
		sat.tasks = append(sat.tasks, st)
		task := vcloud.Task{
			Ops:         satTaskOps,
			InputBytes:  satInputBytes,
			OutputBytes: satOutputBytes,
			Deadline:    st.deadline,
			Optional:    st.optional,
		}
		err := sat.gov.Submit(task, func(r vcloud.TaskResult) {
			sk.onSatOutcome(seq, r)
		})
		if err != nil {
			sk.report.SatFailed++
			sk.event("sat %d refused at %s", seq, now)
			continue
		}
		sk.report.SatSubmitted++
		if !st.optional {
			sk.report.SatRequired++
		}
	}
}

// onSatOutcome records a congestion-workload callback and checks the
// shed contract: load-shedding may only ever hit optional work.
func (sk *soak) onSatOutcome(seq int, r vcloud.TaskResult) {
	st := sk.sat.tasks[seq]
	st.fired++
	if st.fired > 1 {
		sk.violate("sat seq %d reported %d outcomes (a governor callback fires at most once)", seq, st.fired)
		return
	}
	if r.OK {
		sk.report.SatCompleted++
		sk.event("sat %d ok latency=%s", seq, r.Latency)
		return
	}
	switch r.Reason {
	case vcloud.ReasonShed:
		sk.report.SatShed++
		if !st.optional {
			sk.violate("sat seq %d: required task was load-shed (only optional work may shed)", seq)
		}
	case vcloud.ReasonAdmission:
		sk.report.SatAdmission++
	case vcloud.ReasonBackpressure:
		sk.report.SatBackpressured++
	default:
		sk.report.SatFailed++
	}
	sk.event("sat %d failed reason=%q", seq, r.Reason)
}

// saturateStorm is the congestion storm branch: half the draws are loss
// bursts (the uplink's loss probability spikes for a few seconds), half
// are brief hard outages. Both are exactly the disturbances the
// delay-gradient estimator exists to ride out.
func (sk *soak) saturateStorm(now sim.Time) {
	sat := sk.sat
	if sat.rng.Float64() < 0.5 {
		p := 0.2 + sat.rng.Float64()*0.4
		dur := sim.Time((3 + sat.rng.Float64()*5) * float64(time.Second))
		sat.lossToken++
		token := sat.lossToken
		sat.uplink.SetLossProb(p)
		sk.s.Kernel.After(dur, func() {
			if sat.lossToken == token {
				sat.uplink.SetLossProb(sat.baseLoss)
			}
		})
		sk.report.SatLossBursts++
		sk.fault("%s sat-loss-burst p=%.2f dur=%s", now, p, dur)
		return
	}
	dur := sim.Time((1 + sat.rng.Float64()*2) * float64(time.Second))
	sat.outageToken++
	token := sat.outageToken
	sat.uplink.SetAvailable(false)
	sk.s.Kernel.After(dur, func() {
		if sat.outageToken == token {
			sat.uplink.SetAvailable(true)
		}
	})
	sk.report.SatOutages++
	sk.fault("%s sat-outage dur=%s", now, dur)
}

// checkSaturate audits the saturation invariants on every sweep.
func (sk *soak) checkSaturate() {
	sat := sk.sat
	for i := 0; i < sat.gov.NumTiersConfigured(); i++ {
		if out, lim := sat.gov.Outstanding(i), sat.gov.QueueLimit(i); out > lim {
			sk.violate("saturation: tier %s outstanding %d exceeds queue bound %d (queues must stay bounded)",
				sat.gov.TierLabel(i), out, lim)
		}
	}
	// The FIFO backlog is bounded by tail drop: at most the queue cap
	// plus the transfer the channel is currently serving.
	params := sat.uplink.Params()
	maxService := sim.Time(float64(satInputBytes+satOutputBytes) * 8 / (params.BandwidthMbps * 1e6) * float64(time.Second))
	if qd := sat.uplink.QueueDelay(); qd > params.MaxQueueDelay+2*maxService {
		sk.violate("saturation: uplink queue delay %s exceeds bound %s (tail drop must bound the backlog)",
			qd, params.MaxQueueDelay+2*maxService)
	}
	// The estimate may be wrong but never unphysical.
	if est, capBps := sat.sender.EstimateBps(), params.BandwidthMbps*1e6; est > capBps || est <= 0 {
		sk.violate("saturation: bandwidth estimate %.0f bps outside channel capacity (0, %.0f] (estimates must stay physical)",
			est, capBps)
	}
}

// finalizeSaturate copies the congestion-workload counters into the
// report.
func (sk *soak) finalizeSaturate() {
	sat := sk.sat
	sk.report.SatShed = int(sk.stats.Shed.Value())
	sk.report.SatAdmission = int(sk.stats.AdmissionRejects.Value())
	sk.report.SatBackpressured = int(sk.stats.Backpressured.Value())
	sk.report.SatPlacedVehicle = sat.gov.Placed(0)
	sk.report.SatPlacedCloud = sat.gov.Placed(1)
	sk.report.TierSwitches = sk.stats.TierSwitches.Value()
	sk.report.UplinkSent, sk.report.UplinkDelivered, sk.report.UplinkLost, sk.report.UplinkDropped = sat.uplink.Counters()
}
